package transport

import (
	"context"
	"bytes"
	"testing"

	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/pkgmgr"
)

// Tests for the binary chunk framing: chunk payload must cross the wire
// byte-for-byte (no base64 expansion), the legacy JSON encoding must keep
// working behind Server.JSONChunks, and both must deliver bit-identical
// files.

// pushBigUpgrade deploys a fresh large payload to one agent and returns
// the connection's transfer stats and the machine.
func pushBigUpgrade(t *testing.T, jsonChunks bool, size int) (Stats, *machine.Machine) {
	t.Helper()
	m := userMachine("frame-node", false)
	s, _ := startFleet(t, m)
	s.JSONChunks = jsonChunks

	up := &pkgmgr.Upgrade{
		ID: "mysql-frame-5",
		Pkg: &pkgmgr.Package{Name: "mysql", Version: "5.0.22", Files: []*machine.File{
			{Path: apps.MySQLExec, Type: machine.TypeExecutable, Data: bigData(11, size), Version: "5.0.22"},
		}},
		Replaces: "4.1.22",
	}
	rep, err := s.Node("frame-node").TestUpgrade(context.Background(), up)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Success {
		t.Fatalf("test failed: %+v", rep)
	}
	if err := s.Node("frame-node").Integrate(context.Background(), up); err != nil {
		t.Fatal(err)
	}
	if f := m.ReadFile(apps.MySQLExec); f == nil || !bytes.Equal(f.Data, bigData(11, size)) {
		t.Fatal("delivered file differs from the vendor's")
	}
	st, ok := s.AgentStats("frame-node")
	if !ok {
		t.Fatal("no stats for registered agent")
	}
	return st, m
}

// TestBinaryFramingZeroExpansion asserts the headline wire property: with
// the binary chunk frame, total bytes on the wire exceed the raw chunk
// payload only by header overhead — nothing close to base64's 4/3. The
// legacy JSON mode pays that expansion, which is the control making the
// assertion meaningful.
func TestBinaryFramingZeroExpansion(t *testing.T) {
	const size = 256 * 1024

	binSt, _ := pushBigUpgrade(t, false, size)
	if binSt.ChunkBytesSent < size {
		t.Fatalf("binary push moved %d chunk bytes for a %d payload — test is vacuous", binSt.ChunkBytesSent, size)
	}
	// Headers: a ChunkMeta entry and two manifest sends per push, tens of
	// bytes per chunk against ~4KB chunks. An eighth of the payload is a
	// generous ceiling that base64 (+33%) cannot hide under.
	binOverhead := binSt.BytesSent - binSt.ChunkBytesSent
	if binOverhead > binSt.ChunkBytesSent/8 {
		t.Fatalf("binary framing overhead = %d bytes on %d chunk bytes, want < 1/8",
			binOverhead, binSt.ChunkBytesSent)
	}

	jsonSt, _ := pushBigUpgrade(t, true, size)
	jsonOverhead := jsonSt.BytesSent - jsonSt.ChunkBytesSent
	if jsonOverhead < jsonSt.ChunkBytesSent/4 {
		t.Fatalf("json control moved %d overhead bytes on %d chunk bytes — base64 expansion missing, control broken",
			jsonOverhead, jsonSt.ChunkBytesSent)
	}
}

// TestJSONChunksCompat keeps the legacy chunk encoding deployable
// end-to-end (the -json-chunks flag): correctness is identical, only the
// wire expansion differs.
func TestJSONChunksCompat(t *testing.T) {
	st, m := pushBigUpgrade(t, true, 64*1024)
	if st.ChunkBytesSent == 0 || st.ChunkMisses == 0 {
		t.Fatalf("stats = %+v, want chunk traffic", st)
	}
	if ref, _ := m.Package("mysql"); ref.Version != "5.0.22" {
		t.Fatalf("machine at %s", ref.Version)
	}
}
