package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/distrib"
	"repro/internal/report"
)

// SimFleet is the scale harness: thousands of protocol-faithful simulated
// agents in one process. Each sim agent speaks the real wire protocol on
// a real connection — registration handshake, manifest negotiation,
// NeedChunks, binary and JSON chunk bodies — but replaces the expensive
// agent internals with the cheapest possible stand-ins: validation is a
// canned successful report instead of a vmtest run, integration is a
// counter bump instead of a package-manager transaction, and every agent
// shares one verifying chunk cache, so an upgrade's bytes cross the wire
// once per fleet instead of once per agent.
//
// Two transports:
//
//   - TCP (Addr): each agent dials the vendor like a real one. This is the
//     honest end-to-end configuration ("over real TCP"), and what CI's 10k
//     tier runs — but two sockets per agent makes a 100k fleet hostage to
//     the file-descriptor limit.
//   - Pipes (Server): each agent is one net.Pipe injected straight into
//     the server via ServeConn — zero descriptors, identical protocol and
//     server-side code paths, which is what lets a 100k-member rollout run
//     on an ordinary box.
type SimFleet struct {
	names []string
	cache *distrib.Cache

	mu     sync.Mutex
	conns  []net.Conn
	closed bool

	wg         sync.WaitGroup
	tested     atomic.Int64
	integrated atomic.Int64
}

// SimOptions configures StartSimFleet. Exactly one of Server (pipe
// transport) and Addr (TCP transport) must be set.
type SimOptions struct {
	// Prefix names the agents "<Prefix>-000000" …; default "sim".
	Prefix string
	// Cache is the shared chunk cache; nil starts an empty one.
	Cache *distrib.Cache
	// Server injects agents as in-process pipes via Server.ServeConn.
	Server *Server
	// Addr dials each agent over TCP.
	Addr string
	// DialTimeout bounds each TCP dial (default 10s).
	DialTimeout time.Duration
	// Spawn bounds how many agents connect concurrently (default 256) —
	// enough to saturate registration without a 100k-goroutine dial storm.
	Spawn int
}

// StartSimFleet launches n simulated agents and returns once every
// connection attempt has been made (use Server.WaitForAgents to wait for
// the registrations to land). Close tears the fleet down.
func StartSimFleet(n int, opts SimOptions) (*SimFleet, error) {
	if (opts.Server == nil) == (opts.Addr == "") {
		return nil, fmt.Errorf("transport: SimOptions must set exactly one of Server and Addr")
	}
	prefix := opts.Prefix
	if prefix == "" {
		prefix = "sim"
	}
	cache := opts.Cache
	if cache == nil {
		cache = distrib.NewCache()
	}
	dialTimeout := opts.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 10 * time.Second
	}
	spawn := opts.Spawn
	if spawn <= 0 {
		spawn = 256
	}
	if spawn > n {
		spawn = n
	}

	f := &SimFleet{cache: cache, names: make([]string, n), conns: make([]net.Conn, 0, n)}
	for i := range f.names {
		f.names[i] = fmt.Sprintf("%s-%06d", prefix, i)
	}

	var firstErr error
	var errMu sync.Mutex
	sem := make(chan struct{}, spawn)
	var launch sync.WaitGroup
	for i := 0; i < n; i++ {
		launch.Add(1)
		sem <- struct{}{}
		go func(name string) {
			defer func() { <-sem; launch.Done() }()
			var conn net.Conn
			if opts.Server != nil {
				client, srvEnd := net.Pipe()
				if err := opts.Server.ServeConn(srvEnd); err != nil {
					client.Close()
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				conn = client
			} else {
				c, err := net.DialTimeout("tcp", opts.Addr, dialTimeout)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				conn = c
			}
			f.mu.Lock()
			if f.closed {
				f.mu.Unlock()
				conn.Close()
				return
			}
			f.conns = append(f.conns, conn)
			f.mu.Unlock()
			f.wg.Add(1)
			go f.serve(name, conn)
		}(f.names[i])
	}
	launch.Wait()
	if firstErr != nil {
		f.Close()
		return nil, fmt.Errorf("transport: sim fleet launch: %w", firstErr)
	}
	return f, nil
}

// Names returns the fleet's agent names in spawn order.
func (f *SimFleet) Names() []string { return f.names }

// Cache returns the shared chunk cache.
func (f *SimFleet) Cache() *distrib.Cache { return f.cache }

// Tested returns how many validations the fleet performed.
func (f *SimFleet) Tested() int64 { return f.tested.Load() }

// Integrated returns how many integrations the fleet performed.
func (f *SimFleet) Integrated() int64 { return f.integrated.Load() }

// Wait blocks until every agent's connection has ended (the vendor
// closed, or Close was called).
func (f *SimFleet) Wait() { f.wg.Wait() }

// Close disconnects every agent and waits for their goroutines.
func (f *SimFleet) Close() {
	f.mu.Lock()
	f.closed = true
	conns := f.conns
	f.conns = nil
	f.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	f.wg.Wait()
}

// serve is one sim agent: register, then answer vendor RPCs until the
// connection dies. Buffers are deliberately small — at 100k agents every
// per-connection kilobyte is 100MB.
func (f *SimFleet) serve(name string, conn net.Conn) {
	defer f.wg.Done()
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 2048)
	bw := bufio.NewWriterSize(conn, 1024)
	fc := newFrameConn(br, bw)
	if err := fc.WriteFrame(Frame{Op: OpRegister, Register: &RegisterReq{Machine: name}}); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	for {
		var req Frame
		if err := fc.ReadFrame(&req); err != nil {
			return
		}
		resp, err := f.handle(name, fc, &req)
		if err != nil {
			return // the stream is desynchronized; die like a real agent
		}
		resp.ID = req.ID
		if err := fc.WriteFrame(resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// resolve performs the manifest-or-inline negotiation for a test or
// integrate request: report what the shared cache is missing, or accept.
func (f *SimFleet) resolve(up *WireUpgrade, man *WireManifest) (id string, need []uint64) {
	if man != nil {
		if miss := f.cache.Missing(man); len(miss) > 0 {
			return man.ID, miss
		}
		return man.ID, nil
	}
	if up != nil {
		return up.ID, nil
	}
	return "", nil
}

// handle answers one vendor RPC with the cheapest protocol-correct
// response. An error return means the connection must die (unreadable
// binary body).
func (f *SimFleet) handle(name string, fc *frameConn, req *Frame) (Frame, error) {
	switch req.Op {
	case OpPing:
		return Frame{OK: true}, nil
	case OpTest:
		if req.Test == nil {
			return Frame{Err: "sim: test without payload"}, nil
		}
		id, need := f.resolve(req.Test.Upgrade, req.Test.Manifest)
		if len(need) > 0 {
			return Frame{OK: true, NeedChunks: need}, nil
		}
		f.tested.Add(1)
		return Frame{OK: true, Report: &report.Report{
			UpgradeID: id, Machine: name, Success: true,
		}}, nil
	case OpIntegrate:
		if req.Integrate == nil {
			return Frame{Err: "sim: integrate without payload"}, nil
		}
		_, need := f.resolve(req.Integrate.Upgrade, req.Integrate.Manifest)
		if len(need) > 0 {
			return Frame{OK: true, NeedChunks: need}, nil
		}
		f.integrated.Add(1)
		return Frame{OK: true}, nil
	case OpFetchChunks:
		if len(req.ChunkMeta) > 0 {
			// Binary body: the bytes follow the header on the stream and
			// MUST be consumed even on a bad chunk.
			if err := fc.ReadChunkBody(req.ChunkMeta, f.cache.Add); err != nil {
				return Frame{}, err
			}
			return Frame{OK: true}, nil
		}
		if req.FetchChunks != nil {
			for _, ch := range req.FetchChunks.Chunks {
				if err := f.cache.Add(ch.Hash, ch.Data); err != nil {
					return Frame{Err: err.Error()}, nil
				}
			}
		}
		return Frame{OK: true}, nil
	case OpPeerFetch:
		// Sim agents run no peer servers; decline everything and let the
		// vendor fall back to its own push.
		var need []uint64
		if req.PeerFetch != nil {
			need = req.PeerFetch.Addrs
		}
		return Frame{OK: true, NeedChunks: need}, nil
	case OpFingerprint:
		return Frame{OK: true, AppSet: "sim"}, nil
	case OpIdentify:
		return Frame{OK: true}, nil
	case OpRecord:
		return Frame{OK: true, Status: "recorded"}, nil
	default:
		return Frame{Err: "sim: unsupported op " + req.Op}, nil
	}
}
