package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/distrib"
	"repro/internal/report"
)

// SimFleet is the scale harness: thousands of protocol-faithful simulated
// agents in one process. Each sim agent speaks the real wire protocol on
// a real connection — registration handshake, manifest negotiation,
// NeedChunks, binary and JSON chunk bodies — but replaces the expensive
// agent internals with the cheapest possible stand-ins: validation is a
// canned successful report instead of a vmtest run, integration is a
// counter bump instead of a package-manager transaction, and every agent
// shares one verifying chunk cache, so an upgrade's bytes cross the wire
// once per fleet instead of once per agent.
//
// Two transports:
//
//   - TCP (Addr): each agent dials the vendor like a real one. This is the
//     honest end-to-end configuration ("over real TCP"), and what CI's 10k
//     tier runs — but two sockets per agent makes a 100k fleet hostage to
//     the file-descriptor limit.
//   - Pipes (Server): each agent is one net.Pipe injected straight into
//     the server via ServeConn — zero descriptors, identical protocol and
//     server-side code paths, which is what lets a 100k-member rollout run
//     on an ordinary box.
type SimFleet struct {
	names []string
	cache *distrib.Cache
	opts  SimOptions

	mu     sync.Mutex
	conns  map[string]net.Conn
	closed bool

	wg         sync.WaitGroup
	tested     atomic.Int64
	integrated atomic.Int64
}

// SimOptions configures StartSimFleet. Exactly one of Server (pipe
// transport) and Addr (TCP transport) must be set.
type SimOptions struct {
	// Prefix names the agents "<Prefix>-000000" …; default "sim".
	Prefix string
	// Cache is the shared chunk cache; nil starts an empty one.
	Cache *distrib.Cache
	// Server injects agents as in-process pipes via Server.ServeConn.
	Server *Server
	// Addr dials each agent over TCP.
	Addr string
	// DialTimeout bounds each TCP dial (default 10s).
	DialTimeout time.Duration
	// Spawn bounds how many agents connect concurrently (default 256) —
	// enough to saturate registration without a 100k-goroutine dial storm.
	Spawn int
	// Faults injects deterministic chaos into every sim agent's serve
	// loop — the fleet-scale counterpart of Agent.Faults.
	Faults *FaultInjector
	// Reconnect redials (or re-pipes) an agent whose session died while
	// the fleet is still open — the sim counterpart of RunWithReconnect,
	// and what lets a fleet under drop/crash chaos converge anyway.
	Reconnect bool
}

// StartSimFleet launches n simulated agents and returns once every
// connection attempt has been made (use Server.WaitForAgents to wait for
// the registrations to land). Close tears the fleet down.
func StartSimFleet(n int, opts SimOptions) (*SimFleet, error) {
	if (opts.Server == nil) == (opts.Addr == "") {
		return nil, fmt.Errorf("transport: SimOptions must set exactly one of Server and Addr")
	}
	prefix := opts.Prefix
	if prefix == "" {
		prefix = "sim"
	}
	if opts.Cache == nil {
		opts.Cache = distrib.NewCache()
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 10 * time.Second
	}
	spawn := opts.Spawn
	if spawn <= 0 {
		spawn = 256
	}
	if spawn > n {
		spawn = n
	}

	f := &SimFleet{cache: opts.Cache, opts: opts, names: make([]string, n), conns: make(map[string]net.Conn, n)}
	for i := range f.names {
		f.names[i] = fmt.Sprintf("%s-%06d", prefix, i)
	}

	var firstErr error
	var errMu sync.Mutex
	sem := make(chan struct{}, spawn)
	var launch sync.WaitGroup
	for i := 0; i < n; i++ {
		launch.Add(1)
		sem <- struct{}{}
		go func(name string) {
			defer func() { <-sem; launch.Done() }()
			conn, err := f.connect(name)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			f.wg.Add(1)
			go f.run(name, conn)
		}(f.names[i])
	}
	launch.Wait()
	if firstErr != nil {
		f.Close()
		return nil, fmt.Errorf("transport: sim fleet launch: %w", firstErr)
	}
	return f, nil
}

// connect establishes one agent connection on the fleet's transport and
// records it so Close can tear it down.
func (f *SimFleet) connect(name string) (net.Conn, error) {
	var conn net.Conn
	if f.opts.Server != nil {
		client, srvEnd := net.Pipe()
		if err := f.opts.Server.ServeConn(srvEnd); err != nil {
			client.Close()
			return nil, err
		}
		conn = client
	} else {
		c, err := net.DialTimeout("tcp", f.opts.Addr, f.opts.DialTimeout)
		if err != nil {
			return nil, err
		}
		conn = c
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("sim fleet closed")
	}
	f.conns[name] = conn
	f.mu.Unlock()
	return conn, nil
}

// run is one agent's session lifecycle: serve until the connection dies
// and, with Reconnect, come back — the way a crashed-and-restarted agent
// redials the vendor.
func (f *SimFleet) run(name string, conn net.Conn) {
	defer f.wg.Done()
	for {
		f.serve(name, conn)
		if !f.opts.Reconnect {
			return
		}
		f.mu.Lock()
		closed := f.closed
		f.mu.Unlock()
		if closed {
			return
		}
		// Pace the redial like a real agent, then retry a few times: the
		// vendor may be mid-teardown of the dead registration.
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			time.Sleep(2 * time.Millisecond)
			if conn, err = f.connect(name); err == nil {
				break
			}
		}
		if err != nil {
			return
		}
	}
}

// Names returns the fleet's agent names in spawn order.
func (f *SimFleet) Names() []string { return f.names }

// Cache returns the shared chunk cache.
func (f *SimFleet) Cache() *distrib.Cache { return f.cache }

// Tested returns how many validations the fleet performed.
func (f *SimFleet) Tested() int64 { return f.tested.Load() }

// Integrated returns how many integrations the fleet performed.
func (f *SimFleet) Integrated() int64 { return f.integrated.Load() }

// Wait blocks until every agent's connection has ended (the vendor
// closed, or Close was called).
func (f *SimFleet) Wait() { f.wg.Wait() }

// Close disconnects every agent and waits for their goroutines.
func (f *SimFleet) Close() {
	f.mu.Lock()
	f.closed = true
	conns := f.conns
	f.conns = nil
	f.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	f.wg.Wait()
}

// serve is one sim agent session: register, then answer vendor RPCs until
// the connection dies. Buffers are deliberately small — at 100k agents
// every per-connection kilobyte is 100MB.
func (f *SimFleet) serve(name string, conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 2048)
	bw := bufio.NewWriterSize(conn, 1024)
	fc := newFrameConn(br, bw)
	if err := fc.WriteFrame(Frame{Op: OpRegister, Register: &RegisterReq{Machine: name}}); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	for {
		var req Frame
		if err := fc.ReadFrame(&req); err != nil {
			return
		}
		dieAfter := false
		if fi := f.opts.Faults; fi != nil {
			// Same chaos semantics as Agent.serve: drop/crash kill the
			// session unanswered (after consuming any binary body, which
			// would otherwise desync nothing — the session dies anyway, but
			// handling keeps the cache bookkeeping honest), reset answers
			// never arrive, delay is injected latency.
			switch fi.Next(name, req.Op) {
			case FaultDrop, FaultCrash:
				if req.Op != OpFetchChunks || len(req.ChunkMeta) == 0 {
					return
				}
				dieAfter = true
			case FaultDelay:
				time.Sleep(fi.DelayBy())
			case FaultReset:
				dieAfter = true
			}
		}
		resp, err := f.handle(name, fc, &req)
		if err != nil {
			return // the stream is desynchronized; die like a real agent
		}
		if dieAfter {
			return
		}
		resp.ID = req.ID
		if err := fc.WriteFrame(resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// resolve performs the manifest-or-inline negotiation for a test or
// integrate request: report what the shared cache is missing, or accept.
func (f *SimFleet) resolve(up *WireUpgrade, man *WireManifest) (id string, need []uint64) {
	if man != nil {
		if miss := f.cache.Missing(man); len(miss) > 0 {
			return man.ID, miss
		}
		return man.ID, nil
	}
	if up != nil {
		return up.ID, nil
	}
	return "", nil
}

// handle answers one vendor RPC with the cheapest protocol-correct
// response. An error return means the connection must die (unreadable
// binary body).
func (f *SimFleet) handle(name string, fc *frameConn, req *Frame) (Frame, error) {
	switch req.Op {
	case OpPing:
		return Frame{OK: true}, nil
	case OpTest:
		if req.Test == nil {
			return Frame{Err: "sim: test without payload"}, nil
		}
		id, need := f.resolve(req.Test.Upgrade, req.Test.Manifest)
		if len(need) > 0 {
			return Frame{OK: true, NeedChunks: need}, nil
		}
		f.tested.Add(1)
		return Frame{OK: true, Report: &report.Report{
			UpgradeID: id, Machine: name, Success: true,
		}}, nil
	case OpIntegrate:
		if req.Integrate == nil {
			return Frame{Err: "sim: integrate without payload"}, nil
		}
		_, need := f.resolve(req.Integrate.Upgrade, req.Integrate.Manifest)
		if len(need) > 0 {
			return Frame{OK: true, NeedChunks: need}, nil
		}
		f.integrated.Add(1)
		return Frame{OK: true}, nil
	case OpFetchChunks:
		if len(req.ChunkMeta) > 0 {
			// Binary body: the bytes follow the header on the stream and
			// MUST be consumed even on a bad chunk. A digest rejection
			// leaves the drained stream intact, so — like the real agent —
			// it travels back in the reply rather than killing the session
			// (if the error was I/O, the write below fails and the session
			// ends anyway).
			if err := fc.ReadChunkBody(req.ChunkMeta, f.cache.Add); err != nil {
				return Frame{Err: err.Error()}, nil
			}
			return Frame{OK: true}, nil
		}
		if req.FetchChunks != nil {
			for _, ch := range req.FetchChunks.Chunks {
				if err := f.cache.Add(ch.Hash, ch.Data); err != nil {
					return Frame{Err: err.Error()}, nil
				}
			}
		}
		return Frame{OK: true}, nil
	case OpPeerFetch:
		// Sim agents run no peer servers; decline everything and let the
		// vendor fall back to its own push.
		var need []uint64
		if req.PeerFetch != nil {
			need = req.PeerFetch.Addrs
		}
		return Frame{OK: true, NeedChunks: need}, nil
	case OpFingerprint:
		return Frame{OK: true, AppSet: "sim"}, nil
	case OpIdentify:
		return Frame{OK: true}, nil
	case OpRecord:
		return Frame{OK: true, Status: "recorded"}, nil
	default:
		return Frame{Err: "sim: unsupported op " + req.Op}, nil
	}
}
