package transport

import (
	"context"
	"testing"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/machine"
)

// Local-vs-remote parity: core.Vendor.ClusterFleet over an in-process
// fleet and Server.ClusterRemote over the same machines behind agents run
// the same profile pipeline, so they must produce identical clusters,
// representative selections, and distances.

// parityMachine builds one fleet machine; flavor varies the parsed diff
// (libc version) and the app set (php4) so the clustering exercises both
// phase 1 and the app-set split.
func parityMachine(name string, libcVersion string, php4 bool) *machine.Machine {
	m := machine.New(name)
	m.SetEnv("HOME", "/home/user")
	m.WriteFile(lib("/lib/libc.so", libcVersion, ""))
	m.WriteFile(exe(apps.MySQLExec, "4.1.22"))
	m.WriteFile(lib(apps.LibMySQLPath, "4.1", ""))
	m.InstallPackage(machine.PackageRef{Name: "mysql", Version: "4.1.22"},
		[]string{apps.MySQLExec, apps.LibMySQLPath})
	if php4 {
		m.WriteFile(exe(apps.PHPExec, "4.4.6"))
		m.InstallPackage(machine.PackageRef{Name: "php", Version: "4.4.6"}, []string{apps.PHPExec})
	}
	return m
}

func nodeNames(nodes []deploy.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name()
	}
	return out
}

func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLocalAndRemoteClusteringParity(t *testing.T) {
	type flavor struct {
		libc string
		php4 bool
	}
	flavors := []flavor{
		{"2.4", false}, {"2.4", false}, {"2.4", true}, {"2.4", true},
		{"2.5", false}, {"2.5", false}, {"2.5", true},
	}
	names := []string{"pm-00", "pm-01", "pm-02", "pm-03", "pm-04", "pm-05", "pm-06"}

	// Two identical copies of the fleet: one wrapped as local user
	// machines, one served by agents over the wire.
	var localMachines, remoteMachines []*machine.Machine
	for i, f := range flavors {
		localMachines = append(localMachines, parityMachine(names[i], f.libc, f.php4))
		remoteMachines = append(remoteMachines, parityMachine(names[i], f.libc, f.php4))
	}

	refs, regCfg, vendorItems := mysqlVendorItems(t)
	cfg := cluster.Config{Diameter: 3}
	const reps = 2

	// Remote path.
	s, _ := startFleet(t, remoteMachines...)
	rc, err := s.ClusterRemote(context.Background(), "mysql", refs, regCfg, vendorItems, cfg, reps)
	if err != nil {
		t.Fatal(err)
	}
	remoteDeploy, remoteRaw := rc.Deploy, rc.Clusters

	// Local path: same reference machine, resource references and (Mirage)
	// registry as the wire configuration describes.
	v := core.NewVendor(userMachine("vendor-ref", false))
	v.Resources["mysql"] = refs
	fleet := core.NewFleet(v, localMachines...)
	cl, err := v.ClusterFleet(context.Background(), fleet, "mysql", cfg, reps)
	if err != nil {
		t.Fatal(err)
	}

	if len(cl.Clusters) != len(remoteRaw) {
		t.Fatalf("local %d clusters, remote %d", len(cl.Clusters), len(remoteRaw))
	}
	if len(cl.Clusters) < 3 {
		t.Fatalf("fixture too weak: only %d clusters", len(cl.Clusters))
	}
	for i := range cl.Clusters {
		lc, rc := cl.Clusters[i], remoteRaw[i]
		if lc.ID != rc.ID || lc.Distance != rc.Distance {
			t.Fatalf("cluster %d: local id/distance %d/%d, remote %d/%d",
				i, lc.ID, lc.Distance, rc.ID, rc.Distance)
		}
		if !sameNames(lc.Machines, rc.Machines) {
			t.Fatalf("cluster %d: local members %v, remote %v", i, lc.Machines, rc.Machines)
		}
		if !lc.Label.Equal(rc.Label) {
			t.Fatalf("cluster %d: labels differ", i)
		}
	}

	if len(cl.Deploy) != len(remoteDeploy) {
		t.Fatalf("local %d deploy clusters, remote %d", len(cl.Deploy), len(remoteDeploy))
	}
	for i := range cl.Deploy {
		ld, rd := cl.Deploy[i], remoteDeploy[i]
		if ld.ID != rd.ID || ld.Distance != rd.Distance {
			t.Fatalf("deploy cluster %d: local %s/%d, remote %s/%d",
				i, ld.ID, ld.Distance, rd.ID, rd.Distance)
		}
		if !sameNames(nodeNames(ld.Representatives), nodeNames(rd.Representatives)) {
			t.Fatalf("deploy cluster %s: local reps %v, remote %v",
				ld.ID, nodeNames(ld.Representatives), nodeNames(rd.Representatives))
		}
		if !sameNames(nodeNames(ld.Others), nodeNames(rd.Others)) {
			t.Fatalf("deploy cluster %s: local others %v, remote %v",
				ld.ID, nodeNames(ld.Others), nodeNames(rd.Others))
		}
	}
}
