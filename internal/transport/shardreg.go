package transport

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The agent registry is the hottest structure in the vendor: every RPC
// dispatch resolves a name through it, and a fleet-wide registration storm
// hits it from every accept goroutine at once. A single mutex around one
// map serializes all of that; Registry spreads names across N independent
// shards (FNV-1a of the name, masked) so lookups and registrations on
// different shards never contend.
//
// Waiting is the other scaling hazard. The old design kept one broadcast
// channel that was closed and replaced on every registry change, so during
// a 100k-agent registration storm every waiter woke 100k times and
// re-scanned the registry each time — O(fleet²) work for a single
// WaitForAgents call. Registry instead wakes a waiter exactly once:
// count waiters publish a threshold and are signalled by the registration
// that reaches it (count-based, no rescans); name waiters hang off the
// shard that owns their name and are signalled by that name's arrival.

// fnv1aOffset/fnv1aPrime are the FNV-1a 64-bit parameters; the hash is
// inlined so shard picking allocates nothing.
const (
	fnv1aOffset = 14695981039346656037
	fnv1aPrime  = 1099511628211
)

func fnv1a(name string) uint64 {
	h := uint64(fnv1aOffset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnv1aPrime
	}
	return h
}

// DefaultShards derives the default shard count from GOMAXPROCS: enough
// shards that concurrently running goroutines rarely collide (4x, rounded
// up to a power of two so the shard pick is a mask), bounded so a small
// fleet on a big box doesn't pay for hundreds of empty maps.
func DefaultShards() int { return normalizeShards(0) }

func normalizeShards(n int) int {
	if n <= 0 {
		n = 4 * runtime.GOMAXPROCS(0)
	}
	p := 1
	for p < n && p < 512 {
		p <<= 1
	}
	return p
}

// regShard is one lock-domain of the registry: a map slice plus the
// waiters for names that hash here.
type regShard[V any] struct {
	mu      sync.Mutex
	m       map[string]V
	nameWtr map[string][]chan struct{}
	// pad keeps neighbouring shards' mutexes off one cache line, which is
	// the difference between sharding and false sharing.
	_ [64]byte
}

// countWaiter is one parked WaitCount call: closed exactly once, by the
// registration that brings the count to n (or by nobody — the waiter also
// watches its own timeout and the caller's done channel).
type countWaiter struct {
	n  int
	ch chan struct{}
}

// Registry is a hash-sharded name → value map with single-wakeup waiting.
// The zero value is not usable; call NewRegistry.
type Registry[V any] struct {
	shards []regShard[V]
	mask   uint64

	count atomic.Int64

	// minWait caches the smallest outstanding count-waiter threshold
	// (MaxInt64 when none), so the registration fast path is one atomic
	// load — the waiter list and its lock are touched only by the
	// registration that actually satisfies somebody.
	minWait atomic.Int64
	wmu     sync.Mutex
	waiters []countWaiter // sorted ascending by threshold

	// wakeups counts waiter signals delivered (count and name alike). A
	// WaitForAgents over an n-agent registration storm must cost O(1)
	// wakeups, not O(n) — the churn regression test pins this down.
	wakeups atomic.Int64
}

// NewRegistry builds a registry with the given shard count; shards <= 0
// selects DefaultShards. The count is rounded up to a power of two.
func NewRegistry[V any](shards int) *Registry[V] {
	n := normalizeShards(shards)
	r := &Registry[V]{
		shards: make([]regShard[V], n),
		mask:   uint64(n - 1),
	}
	for i := range r.shards {
		r.shards[i].m = make(map[string]V)
	}
	r.minWait.Store(math.MaxInt64)
	return r
}

func (r *Registry[V]) shard(name string) *regShard[V] {
	return &r.shards[fnv1a(name)&r.mask]
}

// Shards returns the shard count.
func (r *Registry[V]) Shards() int { return len(r.shards) }

// Len returns the number of registered names.
func (r *Registry[V]) Len() int { return int(r.count.Load()) }

// ShardSizes returns the per-shard entry counts, for metrics and for
// eyeballing hash spread.
func (r *Registry[V]) ShardSizes() []int {
	out := make([]int, len(r.shards))
	for i := range r.shards {
		r.shards[i].mu.Lock()
		out[i] = len(r.shards[i].m)
		r.shards[i].mu.Unlock()
	}
	return out
}

// Wakeups returns the number of waiter signals delivered so far.
func (r *Registry[V]) Wakeups() int64 { return r.wakeups.Load() }

// Get returns the value registered under name.
func (r *Registry[V]) Get(name string) (V, bool) {
	sh := r.shard(name)
	sh.mu.Lock()
	v, ok := sh.m[name]
	sh.mu.Unlock()
	return v, ok
}

// Put registers v under name, returning the displaced value if the name
// was already taken. A replacement does not change the count (and wakes
// nobody — the name was already present); a fresh registration increments
// it, signals any waiters parked on this name, and wakes exactly the
// count waiters whose threshold it reaches.
func (r *Registry[V]) Put(name string, v V) (old V, replaced bool) {
	sh := r.shard(name)
	sh.mu.Lock()
	old, replaced = sh.m[name]
	sh.m[name] = v
	var wtrs []chan struct{}
	if !replaced && sh.nameWtr != nil {
		if ws := sh.nameWtr[name]; len(ws) > 0 {
			wtrs = ws
			delete(sh.nameWtr, name)
		}
	}
	sh.mu.Unlock()
	for _, ch := range wtrs {
		r.wakeups.Add(1)
		close(ch)
	}
	if !replaced {
		n := r.count.Add(1)
		if n >= r.minWait.Load() {
			r.wakeCount(n)
		}
	}
	return old, replaced
}

// wakeCount pops and signals every count waiter whose threshold the new
// count satisfies.
func (r *Registry[V]) wakeCount(n int64) {
	r.wmu.Lock()
	i := 0
	for i < len(r.waiters) && int64(r.waiters[i].n) <= n {
		r.wakeups.Add(1)
		close(r.waiters[i].ch)
		i++
	}
	if i > 0 {
		r.waiters = append(r.waiters[:0], r.waiters[i:]...)
	}
	if len(r.waiters) == 0 {
		r.minWait.Store(math.MaxInt64)
	} else {
		r.minWait.Store(int64(r.waiters[0].n))
	}
	r.wmu.Unlock()
}

// Remove unregisters name, returning what was stored.
func (r *Registry[V]) Remove(name string) (V, bool) {
	sh := r.shard(name)
	sh.mu.Lock()
	v, ok := sh.m[name]
	if ok {
		delete(sh.m, name)
	}
	sh.mu.Unlock()
	if ok {
		r.count.Add(-1)
	}
	return v, ok
}

// RemoveIf unregisters name only if the stored value satisfies same — the
// conditional eviction a dying connection uses so it cannot evict the
// fresh channel that replaced it.
func (r *Registry[V]) RemoveIf(name string, same func(V) bool) bool {
	sh := r.shard(name)
	sh.mu.Lock()
	v, ok := sh.m[name]
	if ok && same(v) {
		delete(sh.m, name)
		sh.mu.Unlock()
		r.count.Add(-1)
		return true
	}
	sh.mu.Unlock()
	return false
}

// Names returns all registered names, sorted.
func (r *Registry[V]) Names() []string {
	out := make([]string, 0, r.Len())
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for n := range sh.m {
			out = append(out, n)
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// Each calls fn for every entry, shard by shard, holding the shard lock —
// fn must be quick and must not call back into the registry.
func (r *Registry[V]) Each(fn func(name string, v V)) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for n, v := range sh.m {
			fn(n, v)
		}
		sh.mu.Unlock()
	}
}

// Clear empties the registry, returning every removed value (so a closing
// server can tear the connections down outside any shard lock).
func (r *Registry[V]) Clear() []V {
	var out []V
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for n, v := range sh.m {
			out = append(out, v)
			delete(sh.m, n)
		}
		sh.mu.Unlock()
	}
	r.count.Add(-int64(len(out)))
	return out
}

// WaitCount blocks until at least n names are registered, the timeout
// elapses, or done is closed; it returns the count it observed. The
// waiter is woken exactly once, by the registration that reaches its
// threshold — never by unrelated registry churn.
func (r *Registry[V]) WaitCount(n int, timeout time.Duration, done <-chan struct{}) int {
	if got := r.count.Load(); got >= int64(n) {
		return int(got)
	}
	ch := make(chan struct{})
	r.wmu.Lock()
	// Publish the threshold, then re-check the count while still holding
	// the lock. Put increments the count before loading minWait, so any
	// registration this re-check misses is one that will see the
	// published threshold and signal — no wakeup can fall between.
	idx := sort.Search(len(r.waiters), func(i int) bool { return r.waiters[i].n > n })
	r.waiters = append(r.waiters, countWaiter{})
	copy(r.waiters[idx+1:], r.waiters[idx:])
	r.waiters[idx] = countWaiter{n: n, ch: ch}
	r.minWait.Store(int64(r.waiters[0].n))
	if got := r.count.Load(); got >= int64(n) {
		r.removeCountWaiter(ch)
		r.wmu.Unlock()
		return int(got)
	}
	r.wmu.Unlock()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-ch:
		return int(r.count.Load())
	case <-done:
	case <-timer.C:
	}
	r.wmu.Lock()
	r.removeCountWaiter(ch)
	r.wmu.Unlock()
	return int(r.count.Load())
}

// removeCountWaiter unlinks ch (if still parked) and refreshes minWait;
// callers hold wmu.
func (r *Registry[V]) removeCountWaiter(ch chan struct{}) {
	for i := range r.waiters {
		if r.waiters[i].ch == ch {
			r.waiters = append(r.waiters[:i], r.waiters[i+1:]...)
			break
		}
	}
	if len(r.waiters) == 0 {
		r.minWait.Store(math.MaxInt64)
	} else {
		r.minWait.Store(int64(r.waiters[0].n))
	}
}

// WaitName blocks until name is registered, the timeout elapses, or done
// is closed; it reports whether the name is present. The waiter hangs off
// the shard that owns the name, so registrations elsewhere never touch it.
func (r *Registry[V]) WaitName(name string, timeout time.Duration, done <-chan struct{}) bool {
	sh := r.shard(name)
	sh.mu.Lock()
	if _, ok := sh.m[name]; ok {
		sh.mu.Unlock()
		return true
	}
	ch := make(chan struct{})
	if sh.nameWtr == nil {
		sh.nameWtr = make(map[string][]chan struct{})
	}
	sh.nameWtr[name] = append(sh.nameWtr[name], ch)
	sh.mu.Unlock()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-ch:
		return true
	case <-done:
	case <-timer.C:
	}
	sh.mu.Lock()
	if ws, ok := sh.nameWtr[name]; ok {
		for i := range ws {
			if ws[i] == ch {
				ws = append(ws[:i], ws[i+1:]...)
				break
			}
		}
		if len(ws) == 0 {
			delete(sh.nameWtr, name)
		} else {
			sh.nameWtr[name] = ws
		}
	}
	_, present := sh.m[name]
	sh.mu.Unlock()
	return present
}
