package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/distrib"
)

// FaultPlan describes a deterministic chaos schedule for one endpoint:
// per-call fault rates (drop/delay/corrupt/reset), an optional total fault
// budget, and explicit per-agent crash points. It is the active-intruder
// channel model — an adversary that drops, delays, and corrupts messages —
// applied to the vendor/agent control channels, and it is seeded: the same
// plan against the same call sequence injects the same faults, which is
// what lets a chaos test assert an exact terminal state.
//
// A plan is installed on one endpoint (Server.Faults, Agent.Faults, or
// SimOptions.Faults) via NewFaultInjector. Rates are probabilities in
// [0,1] evaluated once per call against a per-agent PRNG stream derived
// from Seed and the agent name, so injection is deterministic per agent
// regardless of goroutine scheduling across agents.
type FaultPlan struct {
	// Seed keys the per-agent PRNG streams (0 is a valid, fixed seed).
	Seed uint64

	// Drop kills the connection before the frame is delivered: the peer
	// never sees the call, the caller sees a transient channel death.
	Drop float64
	// Delay sleeps DelayBy before the frame is sent — injected latency.
	Delay float64
	// Corrupt flips a byte of chunk payload in flight. It only applies to
	// chunk-push calls (the content address catches the damage and the
	// push is retried); on other ops a corrupt draw injects nothing.
	Corrupt float64
	// Reset kills the connection after the frame is delivered but before
	// the reply: the peer acts on a request the caller never sees
	// acknowledged — the "work done but unconfirmed" case.
	Reset float64

	// DelayBy is the injected latency per delay fault (default 2ms).
	DelayBy time.Duration

	// MaxFaults caps the total rate-driven faults injected (0 = no cap).
	// A bounded plan is how chaos tests guarantee the storm subsides and
	// the rollout can make progress afterwards; crash points are scheduled
	// explicitly and do not consume the budget.
	MaxFaults int

	// Crashes are explicit per-agent crash points: when the named agent's
	// call counter reaches AfterCalls, its connection is torn down once
	// (the agent "crashes" and, with reconnect enabled, comes back).
	Crashes []CrashSpec
}

// CrashSpec schedules one agent crash.
type CrashSpec struct {
	Agent string
	// AfterCalls is the 1-based call count at which the crash fires: 3
	// means the agent's third observed call dies.
	AfterCalls int
}

// FaultKind classifies what an injector decided for one call.
type FaultKind int

const (
	FaultNone FaultKind = iota
	FaultDrop
	FaultDelay
	FaultCorrupt
	FaultReset
	FaultCrash
)

// FaultInjector evaluates a FaultPlan call by call. One injector serves
// one endpoint; its per-agent state makes each agent's fault sequence a
// pure function of (plan seed, agent name, that agent's call order).
type FaultInjector struct {
	plan     FaultPlan
	injected atomic.Int64

	mu     sync.Mutex
	agents map[string]*agentFaults
}

type agentFaults struct {
	rng     uint64
	calls   int
	crashes []int // pending crash points, ascending
}

// NewFaultInjector compiles a plan into an injector.
func NewFaultInjector(plan FaultPlan) *FaultInjector {
	return &FaultInjector{plan: plan, agents: make(map[string]*agentFaults)}
}

// Plan returns the injector's plan.
func (fi *FaultInjector) Plan() FaultPlan { return fi.plan }

// Injected returns how many faults (including crashes) have fired.
func (fi *FaultInjector) Injected() int64 { return fi.injected.Load() }

// DelayBy returns the plan's injected latency (defaulted).
func (fi *FaultInjector) DelayBy() time.Duration {
	if fi.plan.DelayBy > 0 {
		return fi.plan.DelayBy
	}
	return 2 * time.Millisecond
}

// Next decides the fault, if any, for the named agent's next call. Crash
// points fire exactly at their scheduled call count; rate faults draw from
// the agent's PRNG stream and stop once MaxFaults is exhausted. Corrupt
// only ever fires for chunk-push calls — for other ops the draw is spent
// but nothing is injected, keeping each agent's stream independent of
// which ops the rollout happens to issue.
func (fi *FaultInjector) Next(agent, op string) FaultKind {
	fi.mu.Lock()
	st, ok := fi.agents[agent]
	if !ok {
		st = &agentFaults{rng: faultSeed(fi.plan.Seed, agent)}
		for _, c := range fi.plan.Crashes {
			if c.Agent == agent {
				st.crashes = append(st.crashes, c.AfterCalls)
			}
		}
		fi.agents[agent] = st
	}
	st.calls++
	for i, at := range st.crashes {
		if st.calls == at {
			st.crashes = append(st.crashes[:i], st.crashes[i+1:]...)
			fi.mu.Unlock()
			fi.injected.Add(1)
			return FaultCrash
		}
	}
	p := frand(&st.rng)
	fi.mu.Unlock()

	if fi.plan.MaxFaults > 0 && fi.injected.Load() >= int64(fi.plan.MaxFaults) {
		return FaultNone
	}
	kind := FaultNone
	switch cum := 0.0; {
	case p < cum+fi.plan.Drop:
		kind = FaultDrop
	case p < cum+fi.plan.Drop+fi.plan.Delay:
		kind = FaultDelay
	case p < cum+fi.plan.Drop+fi.plan.Delay+fi.plan.Corrupt:
		kind = FaultCorrupt
	case p < cum+fi.plan.Drop+fi.plan.Delay+fi.plan.Corrupt+fi.plan.Reset:
		kind = FaultReset
	}
	if kind == FaultCorrupt && op != OpFetchChunks {
		return FaultNone
	}
	if kind != FaultNone {
		fi.injected.Add(1)
	}
	return kind
}

// faultSeed mixes the plan seed with the agent name (FNV-1a) so every
// agent gets its own deterministic stream.
func faultSeed(seed uint64, agent string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(agent); i++ {
		h ^= uint64(agent[i])
		h *= 1099511628211
	}
	s := seed ^ h
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return s
}

// frand advances the xorshift64 state (the same generator staging.Shuffle
// uses) and maps the draw to [0,1).
func frand(state *uint64) float64 {
	s := *state
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	*state = s
	return float64(s>>11) / float64(1<<53)
}

// corruptChunks returns a copy of chunks with one byte of the first
// non-empty payload flipped. The originals are shared with the vendor's
// chunk store and must never be damaged in place.
func corruptChunks(chunks []distrib.Chunk) []distrib.Chunk {
	out := make([]distrib.Chunk, len(chunks))
	copy(out, chunks)
	for i, ch := range out {
		if len(ch.Data) == 0 {
			continue
		}
		data := append([]byte(nil), ch.Data...)
		data[len(data)/2] ^= 0xFF
		out[i].Data = data
		break
	}
	return out
}
