package transport

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/report"
)

// Failure-injection tests for the wire layer: dead agents, bogus
// registrations, timeouts, and mid-deployment disconnects.

func TestRPCToDeadAgentFails(t *testing.T) {
	m := userMachine("doomed", false)
	s, _ := startFleet(t, m)
	// Grab the connection and kill it from the agent side.
	ac, _ := s.registry.Get("doomed")
	conn := ac.conn
	conn.Close()
	time.Sleep(20 * time.Millisecond)

	if _, err := s.Identify(context.Background(), "doomed", "mysql", [][]string{nil}); err == nil {
		t.Fatal("RPC to dead agent succeeded")
	}
}

func TestDeploymentQuarantinesDeadAgent(t *testing.T) {
	// A dead agent no longer kills the rollout: its member is retried on
	// the transient budget, then quarantined, and the wave converges
	// without it.
	m := userMachine("victim", false)
	s, _ := startFleet(t, m)
	if ac, ok := s.registry.Get("victim"); ok {
		ac.conn.Close()
	}
	time.Sleep(20 * time.Millisecond)

	urr := report.New()
	ctl := deploy.NewController(urr, nil)
	ctl.RetryBackoff = time.Millisecond
	clusters := []*deploy.Cluster{{
		ID: "c0", Distance: 0,
		Representatives: []deploy.Node{s.Node("victim")},
	}}
	out, err := ctl.Deploy(context.Background(), deploy.PolicyBalanced, mysql5Wire(), clusters)
	if err != nil {
		t.Fatalf("dead node killed the rollout: %v", err)
	}
	if len(out.Quarantined) != 1 || out.Quarantined[0] != "victim" {
		t.Fatalf("quarantined = %v, want [victim]", out.Quarantined)
	}
	if !out.Nodes["victim"].Quarantined || out.Integrated() != 0 {
		t.Fatalf("victim status = %+v, integrated = %d", out.Nodes["victim"], out.Integrated())
	}
}

func TestBogusRegistrationDropped(t *testing.T) {
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if got := s.Agents(); len(got) != 0 {
		t.Fatalf("bogus registration accepted: %v", got)
	}
	conn.Close()
}

func TestRPCTimeout(t *testing.T) {
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Timeout = 50 * time.Millisecond

	// A half-agent: registers, then never answers.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"op":"register","register":{"machine":"mute"}}` + "\n")); err != nil {
		t.Fatal(err)
	}
	if got := s.WaitForAgents(1, time.Second); got != 1 {
		t.Fatalf("agents = %d", got)
	}

	start := time.Now()
	_, err = s.Identify(context.Background(), "mute", "mysql", nil)
	if err == nil {
		t.Fatal("RPC to mute agent succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

func TestUnknownOpRejectedByAgent(t *testing.T) {
	m := userMachine("strict", false)
	s, _ := startFleet(t, m)
	ac, _ := s.registry.Get("strict")
	_, err := ac.call(context.Background(), Frame{Op: "format-disk"}, time.Second)
	if err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("err = %v", err)
	}
}

func TestServerCloseTerminatesAgents(t *testing.T) {
	m := userMachine("transient", false)
	s, wg := startFleet(t, m)
	s.Close()
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("agent did not terminate after server close")
	}
}
