package transport

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps"
	"repro/internal/distrib"
	"repro/internal/envid"
	"repro/internal/machine"
	"repro/internal/parser"
	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/vmtest"
)

// Agent runs on a user machine: it dials the vendor, registers, and then
// serves vendor-initiated commands until the connection closes.
type Agent struct {
	M          *machine.Machine
	Store      *vmtest.Store
	Identifier *envid.Identifier

	// Cache is the persistent chunk cache backing content-addressed
	// upgrade distribution. It outlives individual RPCs, so the chunks
	// fetched to test an upgrade also serve its integration and any later
	// wave. Several agents may share one cache (machines on a common LAN
	// segment); Cache is safe for that.
	Cache *distrib.Cache
	// SeedCache controls whether the agent primes Cache by chunking its
	// currently installed files before resolving a manifest. Seeding is
	// what makes a version N→N+1 push a content-defined delta; disable it
	// only to measure the unseeded transfer cost.
	SeedCache bool

	// PeerAddr is the advertised address of the agent's peer chunk
	// server, set by ServePeers (empty: this agent does not serve peers).
	// It travels in the registration frame, so set it before Run.
	PeerAddr string
	// PeerTimeout bounds each peer conversation during a vendor-directed
	// peer fetch (0 means DefaultPeerTimeout).
	PeerTimeout time.Duration

	// Faults, when set, injects deterministic chaos on the agent side of
	// the control channel: requests are delayed, dropped (the session dies
	// unanswered), reset (handled, then the session dies before the
	// reply), or the whole agent "crashes" at scheduled call points. Pair
	// it with RunWithReconnect so a killed session redials — exactly the
	// churn a real crashing agent produces.
	Faults *FaultInjector

	// local caches locally identified resources per application.
	local map[string][]string
	// vendorRefs caches the vendor-sent resource references per app.
	vendorRefs map[string][]string

	// watchMu guards watch, which caches per-app everything needed to
	// re-fingerprint offline (registry config, refs, vendor reference
	// items) plus the last vendor-acknowledged diff. handleFingerprint
	// fills it on the control-channel goroutine; the Watch loop reads it
	// from its own.
	watchMu sync.Mutex
	watch   map[string]*watchState

	peerLn                          net.Listener
	peerReqs, peerChunks, peerBytes atomic.Int64
}

// NewAgent returns an agent managing machine m.
func NewAgent(m *machine.Machine) *Agent {
	return &Agent{
		M:          m,
		Store:      vmtest.NewStore(),
		Identifier: &envid.Identifier{},
		Cache:      distrib.NewCache(),
		SeedCache:  true,
		local:      make(map[string][]string),
		vendorRefs: make(map[string][]string),
		watch:      make(map[string]*watchState),
	}
}

// Run dials the vendor at addr, registers, and serves commands until the
// connection is closed by the vendor or an error occurs. It returns nil on
// orderly shutdown (vendor closed the channel).
func (a *Agent) Run(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: dialing vendor: %w", err)
	}
	return a.serve(conn)
}

// serve registers over an established connection and answers vendor
// commands until the session ends. A broken connection — vendor closed
// the channel, network dropped mid-frame — ends the session with nil:
// whether to redial is the caller's policy (RunWithReconnect's loop, or
// Run's give-up).
func (a *Agent) serve(conn net.Conn) error {
	defer conn.Close()

	// Buffer frame writes: one reply is one flushed burst, not a stream
	// of small unbuffered writes straight to the socket. Reads go through
	// the line-based frame codec (not a json.Decoder, whose read-ahead
	// would swallow the raw body of a binary chunk frame).
	bw := bufio.NewWriter(conn)
	fc := newFrameConn(bufio.NewReader(conn), bw)
	if err := fc.WriteFrame(Frame{Op: OpRegister, Register: &RegisterReq{Machine: a.M.Name, Peer: a.PeerAddr}}); err != nil {
		return nil // connection already dead; session over
	}
	if err := bw.Flush(); err != nil {
		return nil
	}

	for {
		var req Frame
		if err := fc.ReadFrame(&req); err != nil {
			return nil // vendor closed the channel (or it broke)
		}
		dieAfter := false
		if a.Faults != nil {
			// Agent-side chaos. A drop or crash before handling kills the
			// session with the request unacted-on; a reset handles it and
			// dies before the reply — either way the vendor sees a
			// transient channel death and (with reconnect) the agent
			// returns. Note a binary chunk body must still be consumed
			// before dying mid-frame would be modeled, so drops land
			// before the body read only for plain frames.
			switch a.Faults.Next(a.M.Name, req.Op) {
			case FaultDrop, FaultCrash:
				if req.Op != OpFetchChunks || len(req.ChunkMeta) == 0 {
					return nil
				}
				dieAfter = true
			case FaultDelay:
				time.Sleep(a.Faults.DelayBy())
			case FaultReset:
				dieAfter = true
			}
		}
		var resp Frame
		if req.Op == OpFetchChunks && len(req.ChunkMeta) > 0 {
			// Binary chunk push: the raw body follows the header on this
			// very stream, so it must be consumed here, in frame order,
			// before the next request can be read.
			resp = a.handleFetchBinary(fc, req.ChunkMeta)
		} else {
			resp = a.handle(req)
		}
		if dieAfter {
			return nil
		}
		resp.ID = req.ID
		if err := fc.WriteFrame(resp); err != nil {
			return nil
		}
		if err := bw.Flush(); err != nil {
			return nil
		}
	}
}

// ServeConn serves vendor commands over an established connection — the
// in-process (net.Pipe) counterpart of Run, pairing with Server.ServeConn
// for fleets that skip TCP entirely. Semantics match serve: nil on
// session end, redialing is the caller's policy.
func (a *Agent) ServeConn(conn net.Conn) error { return a.serve(conn) }

// ReconnectConfig tunes RunWithReconnect. The zero value gives sensible
// defaults: 5 consecutive failed dials before giving up, 20ms initial
// backoff doubling to a 1s ceiling.
type ReconnectConfig struct {
	// MaxAttempts is how many consecutive dials may fail before the agent
	// concludes the vendor is gone and returns (default 5). A successful
	// session resets the count.
	MaxAttempts int
	// BaseDelay is the backoff before the first redial (default 20ms);
	// it doubles per consecutive failure up to MaxDelay (default 1s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Stop, when non-nil, ends the loop as soon as the current session
	// finishes (or immediately, if waiting to redial).
	Stop <-chan struct{}
}

// RunWithReconnect runs the agent like Run, but redials the vendor with
// exponential backoff whenever the control channel drops — the agent-side
// half of churn tolerance. The agent's identity (machine name) and its
// chunk cache live on the Agent value, not the connection, so a
// re-registered session continues exactly where the dropped one left off:
// the vendor's retried RPC finds the same machine with its cache warm.
// It returns nil once MaxAttempts consecutive dials fail (vendor gone —
// the orderly end of a deployment) or Stop is signalled.
func (a *Agent) RunWithReconnect(addr string, cfg ReconnectConfig) error {
	attempts := cfg.MaxAttempts
	if attempts <= 0 {
		attempts = 5
	}
	base := cfg.BaseDelay
	if base <= 0 {
		base = 20 * time.Millisecond
	}
	max := cfg.MaxDelay
	if max <= 0 {
		max = time.Second
	}
	failures := 0
	for {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			failures++
			if failures >= attempts {
				return nil
			}
			delay := base << (failures - 1)
			if delay > max {
				delay = max
			}
			select {
			case <-time.After(delay):
			case <-cfg.Stop:
				return nil
			}
			continue
		}
		failures = 0
		start := time.Now()
		if err := a.serve(conn); err != nil {
			return err
		}
		select {
		case <-cfg.Stop:
			return nil
		default:
		}
		// A session that died faster than the base backoff is a sign of
		// active rejection (administrative drop, a name fight with another
		// agent) — pace the redial so two such agents cannot hot-loop a
		// registration storm against the vendor.
		if time.Since(start) < base {
			select {
			case <-time.After(base):
			case <-cfg.Stop:
				return nil
			}
		}
	}
}

// handle dispatches one vendor command.
func (a *Agent) handle(req Frame) Frame {
	switch req.Op {
	case OpPing:
		return Frame{OK: true}
	case OpIdentify:
		if req.Identify == nil {
			return errFrame("identify payload missing")
		}
		return a.handleIdentify(*req.Identify)
	case OpRecord:
		if req.Record == nil {
			return errFrame("record payload missing")
		}
		return a.handleRecord(*req.Record)
	case OpFingerprint:
		if req.Fingerprint == nil {
			return errFrame("fingerprint payload missing")
		}
		return a.handleFingerprint(req.Fingerprint)
	case OpTest:
		if req.Test == nil {
			return errFrame("test payload missing")
		}
		return a.handleTest(*req.Test)
	case OpIntegrate:
		if req.Integrate == nil {
			return errFrame("integrate payload missing")
		}
		return a.handleIntegrate(*req.Integrate)
	case OpFetchChunks:
		if req.FetchChunks == nil {
			return errFrame("fetch_chunks payload missing")
		}
		return a.handleFetchChunks(*req.FetchChunks)
	case OpPeerFetch:
		if req.PeerFetch == nil {
			return errFrame("peer_fetch payload missing")
		}
		return a.handlePeerFetch(*req.PeerFetch)
	default:
		return errFrame("unknown op " + req.Op)
	}
}

func errFrame(msg string) Frame { return Frame{Err: msg} }

func (a *Agent) handleIdentify(req IdentifyReq) Frame {
	app := apps.Lookup(req.App)
	if app == nil {
		return errFrame("unknown application " + req.App)
	}
	traces := make([]*trace.Trace, 0, len(req.Workloads))
	for _, w := range req.Workloads {
		traces = append(traces, app.Run(a.M, w))
	}
	res := a.Identifier.Identify(a.M, traces, req.App)
	a.local[req.App] = res.Resources
	return Frame{Resources: res.Resources, OK: true}
}

func (a *Agent) handleRecord(req RecordReq) Frame {
	app := apps.Lookup(req.App)
	if app == nil {
		return errFrame("unknown application " + req.App)
	}
	rec := a.Store.Record(app, a.M, req.Inputs)
	return Frame{OK: true, Status: rec.Trace.ExitStatus()}
}

// resolveUpgrade produces the full upgrade from a test/integrate request.
// Inline requests decode directly. Manifest requests resolve against the
// chunk cache: the agent first seeds the cache from its installed files
// (so the unchanged bulk of a version upgrade is already local), then
// either assembles the upgrade entirely from cache or returns the missing
// chunk set for the vendor to push.
func (a *Agent) resolveUpgrade(up *WireUpgrade, man *WireManifest) (*pkgmgr.Upgrade, []uint64, error) {
	if man != nil {
		if a.SeedCache {
			a.Cache.SeedMachine(a.M)
		}
		if need := a.Cache.Missing(man); len(need) > 0 {
			return nil, need, nil
		}
		u, err := a.Cache.Assemble(man)
		return u, nil, err
	}
	if up != nil {
		return UpgradeFromWire(*up), nil, nil
	}
	return nil, nil, fmt.Errorf("neither upgrade nor manifest present")
}

func (a *Agent) handleFetchChunks(req FetchChunksReq) Frame {
	for _, ch := range req.Chunks {
		if err := a.Cache.Add(ch.Hash, ch.Data); err != nil {
			return errFrame(err.Error())
		}
	}
	return Frame{OK: true}
}

// handleFetchBinary consumes a binary chunk push: the raw body announced
// by meta is streamed through a pooled buffer into the cache, each chunk
// verified against its content address by Cache.Add. The body is fully
// consumed even when a chunk is rejected, keeping the control channel's
// framing intact; the error travels back in the reply.
func (a *Agent) handleFetchBinary(fc *frameConn, meta []distrib.ChunkRef) Frame {
	if err := fc.ReadChunkBody(meta, a.Cache.Add); err != nil {
		return errFrame(err.Error())
	}
	return Frame{OK: true}
}

func (a *Agent) handleFingerprint(raw json.RawMessage) Frame {
	var req FingerprintReq
	if err := json.Unmarshal(raw, &req); err != nil {
		return errFrame("fingerprint payload malformed: " + err.Error())
	}
	reg, err := BuildRegistry(req.Registry)
	if err != nil {
		return errFrame(err.Error())
	}
	a.vendorRefs[req.App] = req.Refs
	refs := mergeRefs(req.Refs, a.local[req.App])
	own := parser.NewFingerprinter(reg).Fingerprint(a.M, refs)
	diff := own.Diff(ItemsFromWire(req.VendorItems))
	// Cache what watch mode needs to re-fingerprint offline. The reply
	// below hands the vendor this very diff, so it is the acknowledged
	// baseline future deltas are computed against.
	a.watchMu.Lock()
	a.watch[req.App] = &watchState{
		registry:    req.Registry,
		refs:        req.Refs,
		vendorItems: req.VendorItems,
		lastDiff:    diff,
		lastSig:     diff.Signature(),
	}
	a.watchMu.Unlock()
	return Frame{Diff: ItemsToWire(diff), AppSet: a.M.AppSetKey(), OK: true}
}

func (a *Agent) handleTest(req TestReq) Frame {
	up, need, err := a.resolveUpgrade(req.Upgrade, req.Manifest)
	if err != nil {
		return errFrame(err.Error())
	}
	if len(need) > 0 {
		return Frame{OK: true, NeedChunks: need}
	}
	val := vmtest.NewValidator(a.M, pkgmgr.NewRepository(), a.Store)
	val.ResourcesByApp = a.allResources()
	rep, verr := val.Validate(up)
	if verr != nil {
		return errFrame(verr.Error())
	}
	out := &report.Report{UpgradeID: up.ID, Machine: a.M.Name, Success: rep.OK()}
	for _, verdict := range rep.Verdicts {
		if !verdict.OK {
			out.FailedApps = append(out.FailedApps, verdict.App)
			out.Reasons = append(out.Reasons, verdict.Reason)
		}
	}
	if !out.Success {
		out.Image = report.CaptureImage(rep.Sandbox)
	}
	return Frame{Report: out, OK: true}
}

func (a *Agent) handleIntegrate(req IntegrateReq) Frame {
	up, need, err := a.resolveUpgrade(req.Upgrade, req.Manifest)
	if err != nil {
		return errFrame(err.Error())
	}
	if len(need) > 0 {
		return Frame{OK: true, NeedChunks: need}
	}
	mgr := pkgmgr.NewManager(a.M, pkgmgr.NewRepository())
	if _, err := mgr.Apply(up); err != nil {
		return errFrame(err.Error())
	}
	return Frame{OK: true}
}

func (a *Agent) allResources() map[string][]string {
	names := make(map[string]bool)
	for n := range a.local {
		names[n] = true
	}
	for n := range a.vendorRefs {
		names[n] = true
	}
	out := make(map[string][]string, len(names))
	for n := range names {
		out[n] = mergeRefs(a.vendorRefs[n], a.local[n])
	}
	return out
}

func mergeRefs(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, refs := range [][]string{a, b} {
		for _, r := range refs {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	sort.Strings(out)
	return out
}
