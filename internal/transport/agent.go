package transport

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sort"

	"repro/internal/apps"
	"repro/internal/envid"
	"repro/internal/machine"
	"repro/internal/parser"
	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/vmtest"
)

// Agent runs on a user machine: it dials the vendor, registers, and then
// serves vendor-initiated commands until the connection closes.
type Agent struct {
	M          *machine.Machine
	Store      *vmtest.Store
	Identifier *envid.Identifier

	// local caches locally identified resources per application.
	local map[string][]string
	// vendorRefs caches the vendor-sent resource references per app.
	vendorRefs map[string][]string
}

// NewAgent returns an agent managing machine m.
func NewAgent(m *machine.Machine) *Agent {
	return &Agent{
		M:          m,
		Store:      vmtest.NewStore(),
		Identifier: &envid.Identifier{},
		local:      make(map[string][]string),
		vendorRefs: make(map[string][]string),
	}
}

// Run dials the vendor at addr, registers, and serves commands until the
// connection is closed by the vendor or an error occurs. It returns nil on
// orderly shutdown (vendor closed the channel).
func (a *Agent) Run(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: dialing vendor: %w", err)
	}
	defer conn.Close()

	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(bufio.NewReader(conn))
	if err := enc.Encode(Frame{Op: OpRegister, Register: &RegisterReq{Machine: a.M.Name}}); err != nil {
		return fmt.Errorf("transport: registering: %w", err)
	}

	for {
		var req Frame
		if err := dec.Decode(&req); err != nil {
			return nil // vendor closed the channel
		}
		resp := a.handle(req)
		resp.ID = req.ID
		if err := enc.Encode(resp); err != nil {
			return fmt.Errorf("transport: replying: %w", err)
		}
	}
}

// handle dispatches one vendor command.
func (a *Agent) handle(req Frame) Frame {
	switch req.Op {
	case OpIdentify:
		if req.Identify == nil {
			return errFrame("identify payload missing")
		}
		return a.handleIdentify(*req.Identify)
	case OpRecord:
		if req.Record == nil {
			return errFrame("record payload missing")
		}
		return a.handleRecord(*req.Record)
	case OpFingerprint:
		if req.Fingerprint == nil {
			return errFrame("fingerprint payload missing")
		}
		return a.handleFingerprint(*req.Fingerprint)
	case OpTest:
		if req.Test == nil {
			return errFrame("test payload missing")
		}
		return a.handleTest(*req.Test)
	case OpIntegrate:
		if req.Integrate == nil {
			return errFrame("integrate payload missing")
		}
		return a.handleIntegrate(*req.Integrate)
	default:
		return errFrame("unknown op " + req.Op)
	}
}

func errFrame(msg string) Frame { return Frame{Err: msg} }

func (a *Agent) handleIdentify(req IdentifyReq) Frame {
	app := apps.Lookup(req.App)
	if app == nil {
		return errFrame("unknown application " + req.App)
	}
	traces := make([]*trace.Trace, 0, len(req.Workloads))
	for _, w := range req.Workloads {
		traces = append(traces, app.Run(a.M, w))
	}
	res := a.Identifier.Identify(a.M, traces, req.App)
	a.local[req.App] = res.Resources
	return Frame{Resources: res.Resources, OK: true}
}

func (a *Agent) handleRecord(req RecordReq) Frame {
	app := apps.Lookup(req.App)
	if app == nil {
		return errFrame("unknown application " + req.App)
	}
	rec := a.Store.Record(app, a.M, req.Inputs)
	return Frame{OK: true, Status: rec.Trace.ExitStatus()}
}

func (a *Agent) handleFingerprint(req FingerprintReq) Frame {
	reg, err := BuildRegistry(req.Registry)
	if err != nil {
		return errFrame(err.Error())
	}
	a.vendorRefs[req.App] = req.Refs
	refs := mergeRefs(req.Refs, a.local[req.App])
	own := parser.NewFingerprinter(reg).Fingerprint(a.M, refs)
	diff := own.Diff(ItemsFromWire(req.VendorItems))
	return Frame{Diff: ItemsToWire(diff), AppSet: a.M.AppSetKey(), OK: true}
}

func (a *Agent) handleTest(req TestReq) Frame {
	up := UpgradeFromWire(req.Upgrade)
	val := vmtest.NewValidator(a.M, pkgmgr.NewRepository(), a.Store)
	val.ResourcesByApp = a.allResources()
	rep, err := val.Validate(up)
	if err != nil {
		return errFrame(err.Error())
	}
	out := &report.Report{UpgradeID: up.ID, Machine: a.M.Name, Success: rep.OK()}
	for _, verdict := range rep.Verdicts {
		if !verdict.OK {
			out.FailedApps = append(out.FailedApps, verdict.App)
			out.Reasons = append(out.Reasons, verdict.Reason)
		}
	}
	if !out.Success {
		out.Image = report.CaptureImage(rep.Sandbox)
	}
	return Frame{Report: out, OK: true}
}

func (a *Agent) handleIntegrate(req IntegrateReq) Frame {
	up := UpgradeFromWire(req.Upgrade)
	mgr := pkgmgr.NewManager(a.M, pkgmgr.NewRepository())
	if _, err := mgr.Apply(up); err != nil {
		return errFrame(err.Error())
	}
	return Frame{OK: true}
}

func (a *Agent) allResources() map[string][]string {
	names := make(map[string]bool)
	for n := range a.local {
		names[n] = true
	}
	for n := range a.vendorRefs {
		names[n] = true
	}
	out := make(map[string][]string, len(names))
	for n := range names {
		out[n] = mergeRefs(a.vendorRefs[n], a.local[n])
	}
	return out
}

func mergeRefs(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, refs := range [][]string{a, b} {
		for _, r := range refs {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	sort.Strings(out)
	return out
}
