package transport

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"repro/internal/parser"
	"repro/internal/resource"
)

// Agent watch mode (mirage-agent -watch): periodic local re-fingerprinting
// with delta pushes. After a fingerprint RPC the agent holds everything it
// needs to recompute its diff-against-vendor offline — the registry
// config, the resource refs, the vendor reference items. The watch loop
// re-fingerprints on a timer, compares the diff's signature to the last
// one the vendor acknowledged, and pushes only the changed items over a
// short-lived OpProfileDelta connection. An unchanged machine sends
// nothing; a changed one sends a few hundred bytes (content items are CDC
// chunk digests, so even a rewritten config file is a handful of items).

// watchState is the per-app offline re-fingerprinting state.
type watchState struct {
	registry    RegistryConfig
	refs        []string
	vendorItems []WireItem
	// lastDiff/lastSig are the last vendor-acknowledged diff — the base
	// the next delta is computed against.
	lastDiff *resource.Set
	lastSig  uint64
}

// DefaultDeltaTimeout bounds one OpProfileDelta conversation.
const DefaultDeltaTimeout = 10 * time.Second

// Watch re-fingerprints every interval and pushes profile deltas to the
// vendor at vendorAddr until stop is signalled. Push failures are
// tolerated (the next tick retries); the vendor asking for a resync makes
// the next push a full profile. Run it on its own goroutine, next to the
// control-channel loop.
func (a *Agent) Watch(vendorAddr string, interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			a.CheckDrift(vendorAddr)
		}
	}
}

// CheckDrift is one on-demand watch pass: re-fingerprint every app the
// vendor has profiled, push a delta for each whose diff changed, and
// return the number of pushes that were acknowledged. Unchanged apps cost
// no bytes at all.
func (a *Agent) CheckDrift(vendorAddr string) (pushed int, err error) {
	a.watchMu.Lock()
	watched := make(map[string]*watchState, len(a.watch))
	for app, st := range a.watch {
		watched[app] = st
	}
	a.watchMu.Unlock()

	var firstErr error
	for app, st := range watched {
		reg, rerr := BuildRegistry(st.registry)
		if rerr != nil {
			if firstErr == nil {
				firstErr = rerr
			}
			continue
		}
		refs := mergeRefs(st.refs, a.local[app])
		own := parser.NewFingerprinter(reg).Fingerprint(a.M, refs)
		diff := own.Diff(ItemsFromWire(st.vendorItems))
		sig := diff.Signature()
		if sig == st.lastSig {
			continue // unchanged machine: nothing on the wire
		}
		var added, removed []resource.Item
		for _, it := range diff.Items() {
			if !st.lastDiff.Contains(it) {
				added = append(added, it)
			}
		}
		for _, it := range st.lastDiff.Items() {
			if !diff.Contains(it) {
				removed = append(removed, it)
			}
		}
		req := &ProfileDeltaReq{
			Machine: a.M.Name,
			App:     app,
			AppSet:  a.M.AppSetKey(),
			Sig:     sig,
			Added:   itemsToWireSlice(added),
			Removed: itemsToWireSlice(removed),
		}
		resync, perr := a.pushDelta(vendorAddr, req)
		if resync {
			// Vendor lost our baseline: re-send the complete diff.
			full := &ProfileDeltaReq{
				Machine: a.M.Name, App: app, AppSet: a.M.AppSetKey(),
				Sig: sig, Added: ItemsToWire(diff), Full: true,
			}
			_, perr = a.pushDelta(vendorAddr, full)
		}
		if perr != nil {
			if firstErr == nil {
				firstErr = perr
			}
			continue // keep the old base; next tick retries the delta
		}
		a.watchMu.Lock()
		if cur, ok := a.watch[app]; ok && cur == st {
			st.lastDiff = diff
			st.lastSig = sig
		}
		a.watchMu.Unlock()
		pushed++
	}
	return pushed, firstErr
}

// pushDelta sends one OpProfileDelta frame on a short-lived connection to
// the vendor (the OpPeerGet idiom: dial, one frame each way, close).
func (a *Agent) pushDelta(vendorAddr string, req *ProfileDeltaReq) (resync bool, err error) {
	conn, err := net.DialTimeout("tcp", vendorAddr, DefaultDeltaTimeout)
	if err != nil {
		return false, fmt.Errorf("transport: dialing vendor for delta: %w", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(DefaultDeltaTimeout))
	bw := bufio.NewWriter(conn)
	fc := newFrameConn(bufio.NewReader(conn), bw)
	if err := fc.WriteFrame(Frame{ID: 1, Op: OpProfileDelta, Delta: req}); err != nil {
		return false, fmt.Errorf("transport: sending delta: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return false, fmt.Errorf("transport: sending delta: %w", err)
	}
	var resp Frame
	if err := fc.ReadFrame(&resp); err != nil {
		return false, fmt.Errorf("transport: reading delta reply: %w", err)
	}
	if resp.Err != "" {
		return false, fmt.Errorf("transport: vendor refused delta: %s", resp.Err)
	}
	if !resp.OK {
		return false, fmt.Errorf("transport: unacknowledged delta reply")
	}
	return resp.Status == StatusResync, nil
}

func itemsToWireSlice(items []resource.Item) []WireItem {
	out := make([]WireItem, len(items))
	for i, it := range items {
		out[i] = WireItem{Key: it.Key, Hash: it.Hash, Kind: int(it.Kind)}
	}
	return out
}
