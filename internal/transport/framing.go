package transport

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/distrib"
)

// maxWireChunk bounds a single chunk's declared wire length. The CDC
// chunker never produces chunks anywhere near this (default max 16KB);
// the cap exists so a corrupt or hostile header cannot make a reader
// allocate or stream gigabytes.
const maxWireChunk = 1 << 26 // 64MB

// chunkBufPool recycles the scratch buffers the binary chunk read path
// fills from the socket. Every consumer of chunk bytes copies what it
// keeps (distrib.Cache.Add stores its own copy), so one pooled buffer
// serves an entire stream of chunks and large OpFetchChunks / peer
// transfers allocate nothing per frame on the hot path.
var chunkBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 32*1024)
		return &b
	},
}

// frameConn frames one side of a transport connection: newline-delimited
// JSON headers, optionally followed by a raw binary chunk body whose
// layout (per-chunk address and length, in order) the header announces in
// Frame.ChunkMeta. Raw bodies are what remove base64 from the chunk hot
// path: the JSON header is a few dozen bytes per chunk, the payload
// crosses the wire byte-for-byte.
//
// A frameConn is not safe for concurrent use; callers serialize access
// (the agent's serve loop, the vendor's per-connection RPC mutex).
type frameConn struct {
	br *bufio.Reader
	bw *bufio.Writer
	// line is the reusable header-read buffer: one allocation per
	// connection, not per frame, regardless of header size.
	line []byte
}

func newFrameConn(br *bufio.Reader, bw *bufio.Writer) *frameConn {
	return &frameConn{br: br, bw: bw}
}

// ReadFrame reads one newline-terminated JSON header into f. It replaces
// the json.Decoder the wire format grew up with: a Decoder reads ahead
// into its own buffer, which would swallow the raw chunk body following a
// binary header; reading exactly one line keeps the stream positioned at
// the body's first byte.
func (fc *frameConn) ReadFrame(f *Frame) error {
	fc.line = fc.line[:0]
	for {
		part, err := fc.br.ReadSlice('\n')
		fc.line = append(fc.line, part...)
		if err == nil {
			break
		}
		if err != bufio.ErrBufferFull {
			return err
		}
	}
	*f = Frame{}
	return json.Unmarshal(fc.line, f)
}

// WriteFrame marshals f and writes it as one newline-terminated header.
// The buffered writer is not flushed: callers batch the header with any
// binary body and flush once per message.
func (fc *frameConn) WriteFrame(f Frame) error {
	b, err := json.Marshal(f)
	if err != nil {
		return err
	}
	if _, err := fc.bw.Write(b); err != nil {
		return err
	}
	return fc.bw.WriteByte('\n')
}

// WriteChunkBody writes the raw bytes of chunks after a header whose
// ChunkMeta listed them in the same order. The bytes go straight from the
// store's (or cache's) slices into the buffered writer — no intermediate
// copy, no encoding.
func (fc *frameConn) WriteChunkBody(chunks []distrib.Chunk) error {
	for _, ch := range chunks {
		if _, err := fc.bw.Write(ch.Data); err != nil {
			return err
		}
	}
	return nil
}

// chunkMeta builds the ChunkMeta header entries announcing chunks.
func chunkMeta(chunks []distrib.Chunk) []distrib.ChunkRef {
	meta := make([]distrib.ChunkRef, len(chunks))
	for i, ch := range chunks {
		meta[i] = distrib.ChunkRef{Hash: ch.Hash, Size: len(ch.Data)}
	}
	return meta
}

// ReadChunkBody reads the raw chunk body a header's meta announced,
// invoking fn for each chunk with a pooled scratch buffer that is reused
// between calls — fn must copy anything it keeps. The full declared body
// is always consumed, even when fn rejects a chunk (digest mismatch):
// on a persistent control channel an unconsumed body would desynchronize
// every later frame. The first fn error is returned after the body is
// drained; an I/O error aborts immediately (the stream is dead anyway).
func (fc *frameConn) ReadChunkBody(meta []distrib.ChunkRef, fn func(addr uint64, data []byte) error) error {
	bufp := chunkBufPool.Get().(*[]byte)
	defer chunkBufPool.Put(bufp)
	var firstErr error
	for _, ref := range meta {
		if ref.Size < 0 || ref.Size > maxWireChunk {
			return fmt.Errorf("transport: chunk body declares %d bytes", ref.Size)
		}
		if cap(*bufp) < ref.Size {
			*bufp = make([]byte, ref.Size)
		}
		buf := (*bufp)[:ref.Size]
		if _, err := io.ReadFull(fc.br, buf); err != nil {
			if firstErr != nil {
				return firstErr
			}
			return err
		}
		if firstErr == nil {
			firstErr = fn(ref.Hash, buf)
		}
	}
	return firstErr
}
