package transport

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/parser"
)

// BuildRegistry reconstructs a parser registry from its wire configuration.
func BuildRegistry(cfg RegistryConfig) (*parser.Registry, error) {
	reg := parser.NewRegistry()
	for _, rule := range cfg.Rules {
		p, err := parserByName(rule.Parser, rule.IgnoreKeys)
		if err != nil {
			return nil, err
		}
		switch rule.Match {
		case "path":
			reg.RegisterPath(rule.Pattern, p)
		case "glob":
			reg.RegisterGlob(rule.Pattern, p)
		case "type":
			reg.RegisterType(machine.FileType(rule.Type), p)
		default:
			return nil, fmt.Errorf("transport: unknown registry match kind %q", rule.Match)
		}
	}
	return reg, nil
}

func parserByName(name string, ignoreKeys []string) (parser.Parser, error) {
	switch name {
	case "executable":
		return parser.ExecutableParser{}, nil
	case "sharedlib":
		return parser.SharedLibParser{}, nil
	case "text":
		return parser.TextParser{}, nil
	case "config":
		return parser.ConfigParser{IgnoreKeys: ignoreKeys}, nil
	case "binary":
		return parser.NewBinaryParser(), nil
	default:
		return nil, fmt.Errorf("transport: unknown parser %q", name)
	}
}

// MirageRegistryConfig is the wire form of the Mirage-supplied registry.
func MirageRegistryConfig() RegistryConfig {
	return RegistryConfig{Rules: []RegistryRule{
		{Match: "type", Type: int(machine.TypeExecutable), Parser: "executable"},
		{Match: "type", Type: int(machine.TypeSharedLib), Parser: "sharedlib"},
		{Match: "glob", Pattern: "/etc/*.conf", Parser: "config"},
	}}
}
