package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/machine"
	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/rollout"
)

// Churn tests: agents dying and redialing mid-rollout over the real TCP
// transport, quarantine of the permanently dead, and the typed transient
// errors the deployment controller keys off.

// startReconnectingAgent runs the machine's agent with a fast redial loop
// until the test ends.
func startReconnectingAgent(t *testing.T, s *Server, a *Agent) {
	t.Helper()
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	go a.RunWithReconnect(s.Addr(), ReconnectConfig{
		MaxAttempts: 500,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		Stop:        stop,
	})
	if !s.WaitForAgent(a.M.Name, 5*time.Second) {
		t.Fatalf("agent %s never registered", a.M.Name)
	}
}

func TestPing(t *testing.T) {
	m := userMachine("pingable", false)
	s, _ := startFleet(t, m)
	if err := s.Ping(context.Background(), "pingable"); err != nil {
		t.Fatal(err)
	}
	err := s.Ping(context.Background(), "nobody")
	if err == nil {
		t.Fatal("pinged an unregistered agent")
	}
	if !errors.Is(err, ErrAgentGone) || !deploy.IsTransient(err) {
		t.Fatalf("unregistered-agent error not typed transient: %v", err)
	}
}

func TestDroppedAgentErrorsAreTransient(t *testing.T) {
	m := userMachine("mortal", false)
	s, _ := startFleet(t, m)
	if !s.DropAgent("mortal") {
		t.Fatal("DropAgent found nothing")
	}
	err := s.Ping(context.Background(), "mortal")
	if !errors.Is(err, ErrAgentGone) || !deploy.IsTransient(err) {
		t.Fatalf("err = %v, want ErrAgentGone", err)
	}
}

func TestReplacedConnectionSurfacesTypedError(t *testing.T) {
	m1 := userMachine("twin", false)
	s, _ := startFleet(t, m1)
	old, _ := s.registry.Get("twin")

	// A second agent registers under the same name; the old channel is
	// deliberately closed. A call on the stale handle must say "replaced",
	// not fail with a raw JSON decode error.
	m2 := userMachine("twin", false)
	go NewAgent(m2).Run(s.Addr())
	deadline := time.Now().Add(5 * time.Second)
	for !old.replaced.Load() {
		if time.Now().After(deadline) {
			t.Fatal("old connection never marked replaced")
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, err := old.call(context.Background(), Frame{Op: OpPing}, time.Second)
	if !errors.Is(err, ErrAgentReplaced) || !deploy.IsTransient(err) {
		t.Fatalf("stale-handle error = %v, want ErrAgentReplaced", err)
	}
	// The name resolves to the fresh channel.
	if err := s.Ping(context.Background(), "twin"); err != nil {
		t.Fatal(err)
	}
}

func TestAgentReconnectPreservesIdentityAndCache(t *testing.T) {
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	m := userMachine("phoenix", false)
	agent := NewAgent(m)
	startReconnectingAgent(t, s, agent)

	// Warm the chunk cache through a manifest-mode test RPC.
	if _, err := s.Node("phoenix").TestUpgrade(context.Background(), mysql5Wire()); err != nil {
		t.Fatal(err)
	}
	before := agent.Cache.Stats()
	if before.Chunks == 0 {
		t.Fatal("cache not warmed")
	}

	if !s.DropAgent("phoenix") {
		t.Fatal("drop failed")
	}
	if !s.WaitForAgent("phoenix", 5*time.Second) {
		t.Fatal("agent did not reconnect")
	}
	// Same identity, same cache: the re-test resolves from cache, moving
	// zero chunk bytes.
	pre := s.Stats().ChunkBytesSent
	if _, err := s.Node("phoenix").TestUpgrade(context.Background(), mysql5Wire()); err != nil {
		t.Fatal(err)
	}
	if moved := s.Stats().ChunkBytesSent - pre; moved != 0 {
		t.Fatalf("reconnected agent re-fetched %d chunk bytes; cache lost", moved)
	}
	if after := agent.Cache.Stats(); after.Chunks < before.Chunks {
		t.Fatalf("cache shrank across reconnect: %+v -> %+v", before, after)
	}
}

// chaosNode drops the named agent's connection once, right before its
// first validation RPC — the agent dies mid-wave and must redial for the
// controller's retry to succeed.
type chaosNode struct {
	deploy.Node
	s    *Server
	name string
	once sync.Once
}

func (c *chaosNode) TestUpgrade(ctx context.Context, up *pkgmgr.Upgrade) (*report.Report, error) {
	c.once.Do(func() { c.s.DropAgent(c.name) })
	return c.Node.TestUpgrade(ctx, up)
}

func TestDeploymentSurvivesMidWaveChurn(t *testing.T) {
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	names := []string{"churn-0", "churn-1", "churn-2", "churn-3"}
	machines := make(map[string]*machine.Machine)
	for _, name := range names {
		m := userMachine(name, false)
		machines[name] = m
		startReconnectingAgent(t, s, NewAgent(m))
	}

	// churn-2 is killed at the instant its own wave reaches it.
	clusters := []*deploy.Cluster{{
		ID: "c0", Distance: 1,
		Representatives: []deploy.Node{s.Node("churn-0")},
		Others: []deploy.Node{
			s.Node("churn-1"),
			&chaosNode{Node: s.Node("churn-2"), s: s, name: "churn-2"},
			s.Node("churn-3"),
		},
	}}
	ctl := deploy.NewController(report.New(), nil)
	ctl.RetryBackoff = 10 * time.Millisecond
	ctl.TransientRetries = 8
	out, err := ctl.Deploy(context.Background(), deploy.PolicyBalanced, mysql5Wire(), clusters)
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != len(names) || len(out.Quarantined) != 0 {
		t.Fatalf("integrated=%d quarantined=%v", out.Integrated(), out.Quarantined)
	}
	// The killed-and-revived machine really upgraded.
	if ref, _ := machines["churn-2"].Package("mysql"); ref.Version != "5.0.22" {
		t.Fatalf("churn-2 at %s after churn", ref.Version)
	}
}

// dyingJournal forwards events to the journal recorder until its budget
// runs out, then fails — the vendor process "dying" mid-stage.
type dyingJournal struct {
	inner  deploy.Observer
	budget int
}

func (d *dyingJournal) OnEvent(ev deploy.Event) error {
	if d.budget <= 0 {
		return errors.New("vendor crashed")
	}
	d.budget--
	return d.inner.OnEvent(ev)
}

func TestRolloutResumeOverWire(t *testing.T) {
	// A journaled rollout over real TCP is interrupted mid-stage; a fresh
	// controller resumes from the journal on disk and completes without
	// re-testing or re-integrating any member the journal records as done.
	names := []string{"rw-a0", "rw-a1", "rw-b0", "rw-b1"}
	var machines []*machine.Machine
	for _, n := range names {
		machines = append(machines, userMachine(n, false))
	}
	s, _ := startFleet(t, machines...)
	mkClusters := func() []*deploy.Cluster {
		return []*deploy.Cluster{
			{ID: "cA", Distance: 1,
				Representatives: []deploy.Node{s.Node("rw-a0")},
				Others:          []deploy.Node{s.Node("rw-a1")}},
			{ID: "cB", Distance: 9,
				Representatives: []deploy.Node{s.Node("rw-b0")},
				Others:          []deploy.Node{s.Node("rw-b1")}},
		}
	}

	path := t.TempDir() + "/rollout.journal"
	clusters := mkClusters()
	ctl1 := deploy.NewController(report.New(), nil)
	j, err := rollout.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	plan := ctl1.PlanFor(deploy.PolicyBalanced, clusters)
	if err := j.Append(rollout.PlanRecord(plan, deploy.Refs(clusters), "mysql-5.0.22")); err != nil {
		t.Fatal(err)
	}
	// Budget 5: cA's rep stage journals fully (start, tested, integrated,
	// gate) plus stage 1's start; the vendor dies before recording more.
	ctl1.Observer = &dyingJournal{inner: &rollout.Recorder{J: j}, budget: 5}
	if _, err := ctl1.Deploy(context.Background(), deploy.PolicyBalanced, mysql5Wire(), clusters); err == nil {
		t.Fatal("dying journal did not halt the rollout")
	}
	j.Close()

	run1, err := rollout.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	doneByCrash := make(map[string]bool)
	for _, r := range run1 {
		if r.Type == rollout.RecIntegrated {
			doneByCrash[r.Node] = true
		}
	}
	if len(doneByCrash) == 0 {
		t.Fatal("crash left no journaled progress; test needs a mid-stage interrupt")
	}

	eng := &rollout.Engine{
		Controller: deploy.NewController(report.New(), nil),
		Path:       path,
		Resume:     true,
	}
	out, err := eng.Deploy(context.Background(), deploy.PolicyBalanced, mysql5Wire(), mkClusters())
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != len(names) || len(out.Quarantined) != 0 {
		t.Fatalf("resumed outcome: integrated=%d quarantined=%v", out.Integrated(), out.Quarantined)
	}

	// Journal replay: exactly one integration per member, none of the
	// members done before the crash touched again after it, journal sealed.
	all, err := rollout.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	integrations := make(map[string]int)
	for i, r := range all {
		if r.Type == rollout.RecIntegrated {
			integrations[r.Node]++
		}
		if i >= len(run1) && doneByCrash[r.Node] &&
			(r.Type == rollout.RecTested || r.Type == rollout.RecIntegrated) {
			t.Fatalf("resume re-ran %s on %s, journaled done before the crash", r.Type, r.Node)
		}
	}
	for _, n := range names {
		if integrations[n] != 1 {
			t.Fatalf("journal records %d integrations for %s, want 1", integrations[n], n)
		}
	}
	if last := all[len(all)-1]; last.Type != rollout.RecComplete {
		t.Fatalf("journal not sealed: %+v", last)
	}
	// And the real machines all upgraded exactly once to 5.0.22.
	for _, m := range machines {
		if ref, _ := m.Package("mysql"); ref.Version != "5.0.22" {
			t.Fatalf("%s at %s", m.Name, ref.Version)
		}
	}
}

func TestPermanentlyDeadAgentQuarantinedOverWire(t *testing.T) {
	// Two agents without reconnect loops: one is killed before its wave;
	// the rollout must converge with the survivor integrated and the dead
	// machine quarantined.
	mAlive := userMachine("w-alive", false)
	mDead := userMachine("w-dead", false)
	s, _ := startFleet(t, mAlive, mDead)

	s.DropAgent("w-dead")
	clusters := []*deploy.Cluster{{
		ID: "c0", Distance: 1,
		Representatives: []deploy.Node{s.Node("w-alive")},
		Others:          []deploy.Node{s.Node("w-dead")},
	}}
	ctl := deploy.NewController(report.New(), nil)
	ctl.RetryBackoff = time.Millisecond
	out, err := ctl.Deploy(context.Background(), deploy.PolicyBalanced, mysql5Wire(), clusters)
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != 1 || len(out.Quarantined) != 1 || out.Quarantined[0] != "w-dead" {
		t.Fatalf("integrated=%d quarantined=%v", out.Integrated(), out.Quarantined)
	}
	if ref, _ := mAlive.Package("mysql"); ref.Version != "5.0.22" {
		t.Fatalf("survivor at %s", ref.Version)
	}
}
