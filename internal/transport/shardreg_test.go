package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry[int](4)
	if r.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", r.Shards())
	}
	if _, ok := r.Get("a"); ok {
		t.Fatal("empty registry returned a value")
	}
	if _, replaced := r.Put("a", 1); replaced {
		t.Fatal("fresh Put reported a replacement")
	}
	if old, replaced := r.Put("a", 2); !replaced || old != 1 {
		t.Fatalf("replacing Put = (%d, %v), want (1, true)", old, replaced)
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d after replacement, want 1", r.Len())
	}
	r.Put("b", 3)
	if names := r.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if ok := r.RemoveIf("a", func(v int) bool { return v == 1 }); ok {
		t.Fatal("RemoveIf evicted a non-matching value")
	}
	if ok := r.RemoveIf("a", func(v int) bool { return v == 2 }); !ok {
		t.Fatal("RemoveIf refused a matching value")
	}
	if v, ok := r.Remove("b"); !ok || v != 3 {
		t.Fatalf("Remove(b) = (%d, %v)", v, ok)
	}
	if r.Len() != 0 {
		t.Fatalf("len = %d after removals, want 0", r.Len())
	}
	for i := 0; i < 10; i++ {
		r.Put(fmt.Sprintf("m-%d", i), i)
	}
	if got := len(r.Clear()); got != 10 {
		t.Fatalf("Clear returned %d values, want 10", got)
	}
	if r.Len() != 0 {
		t.Fatalf("len = %d after Clear, want 0", r.Len())
	}
	sum := 0
	for _, n := range r.ShardSizes() {
		sum += n
	}
	if sum != 0 {
		t.Fatalf("shard sizes sum to %d after Clear", sum)
	}
}

// TestRegistryWaiterChurn is the O(fleet²) regression test: a fleet-sized
// registration storm must cost each parked waiter exactly one wakeup, not
// one per registration. The old broadcast design woke every waiter on
// every change — 10k registrations against one WaitForAgents call meant
// 10k wakeups and 10k registry rescans; the count/name waiter design
// delivers one signal per waiter, from the registration that satisfies it.
func TestRegistryWaiterChurn(t *testing.T) {
	const n = 10_000
	r := NewRegistry[int](0)
	done := make(chan struct{})
	defer close(done)

	var wg sync.WaitGroup
	results := make(chan int, 1)
	named := make(chan bool, 1)
	wg.Add(2)
	go func() {
		defer wg.Done()
		results <- r.WaitCount(n, time.Minute, done)
	}()
	go func() {
		defer wg.Done()
		named <- r.WaitName(fmt.Sprintf("reg-%05d", n-1), time.Minute, done)
	}()
	// Let both waiters park before the storm; a waiter that instead
	// arrives mid-storm takes the fast path and costs zero wakeups, which
	// only makes the assertion easier.
	time.Sleep(10 * time.Millisecond)

	for i := 0; i < n; i++ {
		r.Put(fmt.Sprintf("reg-%05d", i), i)
	}
	wg.Wait()
	if got := <-results; got != n {
		t.Fatalf("WaitCount observed %d registrations, want %d", got, n)
	}
	if !<-named {
		t.Fatal("WaitName never saw its registration")
	}
	// One signal per waiter. 10k under the old design; 2 here.
	if w := r.Wakeups(); w > 2 {
		t.Fatalf("%d registrations delivered %d waiter wakeups, want <= 2 — waiters are being woken by unrelated churn", n, w)
	}
}

func TestRegistryWaitCountTimeout(t *testing.T) {
	r := NewRegistry[int](2)
	r.Put("only", 1)
	start := time.Now()
	if got := r.WaitCount(3, 20*time.Millisecond, nil); got != 1 {
		t.Fatalf("timed-out WaitCount = %d, want 1", got)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("WaitCount did not respect its timeout")
	}
	// The timed-out waiter must be unlinked: later registrations have
	// nobody to signal.
	r.Put("second", 2)
	r.Put("third", 3)
	if w := r.Wakeups(); w != 0 {
		t.Fatalf("wakeups = %d after a timed-out waiter, want 0", w)
	}
	// Fast path: threshold already met returns immediately.
	if got := r.WaitCount(2, time.Minute, nil); got != 3 {
		t.Fatalf("satisfied WaitCount = %d, want 3", got)
	}
}

func TestRegistryWaitNameTimeout(t *testing.T) {
	r := NewRegistry[int](2)
	if r.WaitName("ghost", 10*time.Millisecond, nil) {
		t.Fatal("WaitName found a name that never registered")
	}
	r.Put("ghost", 1)
	if w := r.Wakeups(); w != 0 {
		t.Fatalf("wakeups = %d, want 0 — the timed-out name waiter leaked", w)
	}
	if !r.WaitName("ghost", time.Minute, nil) {
		t.Fatal("WaitName missed a present name")
	}
}

// TestRegistryConcurrent hammers every entry point at once; its value is
// under -race, where it proves the shard and waiter locking sound.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry[int](8)
	const workers, perWorker = 8, 500
	done := make(chan struct{})
	defer close(done)
	go r.WaitCount(workers*perWorker/2, time.Minute, done)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("w%d-%03d", w, i)
				r.Put(name, i)
				r.Get(name)
				if i%7 == 0 {
					r.Remove(name)
					r.Put(name, i)
				}
				if i%31 == 0 {
					r.Len()
					r.ShardSizes()
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != workers*perWorker {
		t.Fatalf("len = %d, want %d", r.Len(), workers*perWorker)
	}
}
