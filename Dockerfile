# mirage-vendor container image: a serving control plane with the agent
# listener on 7033 and the HTTP admin API on 7080. Flag defaults are
# env-var-overridable (MIRAGE_ADMIN_ADDR, MIRAGE_JOURNAL_DIR, ...), so
# compose files tune the vendor without rewriting the command line.
FROM golang:1.24-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -o /out/mirage-vendor ./cmd/mirage-vendor \
    && CGO_ENABLED=0 go build -trimpath -o /out/mirage-agent ./cmd/mirage-agent \
    && CGO_ENABLED=0 go build -trimpath -o /out/mirage-ctl ./cmd/mirage-ctl

FROM alpine:3.20
RUN adduser -D -u 10001 mirage
COPY --from=build /out/mirage-vendor /usr/local/bin/mirage-vendor
COPY --from=build /out/mirage-agent /usr/local/bin/mirage-agent
COPY --from=build /out/mirage-ctl /usr/local/bin/mirage-ctl

# Operational defaults for the containerized vendor; any of these can be
# overridden at run time, and explicit command-line flags still win.
ENV MIRAGE_LISTEN_ADDR=0.0.0.0:7033 \
    MIRAGE_ADMIN_ADDR=0.0.0.0:7080 \
    MIRAGE_JOURNAL_DIR=/var/lib/mirage/journals \
    MIRAGE_SERVE=true \
    MIRAGE_LOG_FORMAT=json

RUN mkdir -p /var/lib/mirage/journals && chown -R mirage /var/lib/mirage
USER mirage
VOLUME /var/lib/mirage
EXPOSE 7033 7080

# SIGTERM (the default docker stop signal) triggers the vendor's graceful
# drain: the admin API stops admitting rollouts, the admission queue is
# unwound, and in-flight rollouts are aborted with their journals sealed.
ENTRYPOINT ["mirage-vendor"]
