// staged-rollout runs a fully networked Mirage deployment on localhost:
// a vendor server and eight machine agents connected over TCP. The vendor
// drives remote resource identification and baseline tracing, clusters the
// fleet from wire-exchanged fingerprint diffs, and stages the MySQL 4->5
// upgrade cluster by cluster; failures come back as reports with full
// machine images, the vendor debugs once, and the corrected upgrade
// converges everywhere.
//
//	go run ./examples/staged-rollout
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/machine"
	"repro/internal/parser"
	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/transport"
)

func main() {
	ctx := context.Background()
	srv, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("vendor listening on %s\n", srv.Addr())

	// Launch eight agents: plain Ubuntu boxes, PHP 4 machines, a legacy
	// user-config machine and a Fedora box, all drawn from Table 2.
	fleet := []string{
		"ubt-ms4", "ubt-ms4-2", "ubt-ms4-withconfig",
		"ubt-ms4-php4", "ubt-ms4-php4-ap139",
		"ubt-ms4-userconfig",
		"fc5-ms4", "fc5-ms4-php4",
	}
	specs := scenario.MySQLTable2()
	machines := make(map[string]*machine.Machine)
	for _, name := range fleet {
		for i := range specs {
			if specs[i].Name == name {
				m := scenario.BuildMySQLMachine(specs[i])
				machines[name] = m
				go func() {
					if err := transport.NewAgent(m).Run(srv.Addr()); err != nil {
						log.Printf("agent %s: %v", m.Name, err)
					}
				}()
			}
		}
	}
	if got := srv.WaitForAgents(len(fleet), 10*time.Second); got != len(fleet) {
		log.Fatalf("only %d/%d agents registered", got, len(fleet))
	}
	fmt.Printf("%d agents registered: %v\n\n", len(fleet), srv.Agents())

	// Remote identification and baseline tracing.
	for _, name := range srv.Agents() {
		if _, err := srv.Identify(ctx, name, "mysql", [][]string{{"SELECT 1"}, {"SELECT 2"}}); err != nil {
			log.Fatal(err)
		}
		if _, err := srv.Record(ctx, name, "mysql", []string{"SELECT 1"}); err != nil {
			log.Fatal(err)
		}
		if _, ok := machines[name].Package("php"); ok {
			if _, err := srv.Identify(ctx, name, "php", [][]string{nil}); err != nil {
				log.Fatal(err)
			}
			if _, err := srv.Record(ctx, name, "php", nil); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Fingerprint the fleet over the wire and cluster it.
	regCfg := transport.MirageRegistryConfig()
	reg, err := transport.BuildRegistry(regCfg)
	if err != nil {
		log.Fatal(err)
	}
	refs := scenario.MySQLResourceRefs()
	vendorItems := parser.NewFingerprinter(reg).Fingerprint(scenario.MySQLVendorReference(), refs)
	rc, err := srv.ClusterRemote(ctx, "mysql", refs, regCfg, vendorItems, cluster.Config{Diameter: 3}, 1)
	if err != nil {
		log.Fatal(err)
	}
	dcs := rc.Deploy
	fmt.Printf("clustered into %d clusters:\n", len(rc.Clusters))
	for _, c := range rc.Clusters {
		fmt.Printf("  distance %2d: %v\n", c.Distance, c.Machines)
	}
	fmt.Println()

	// Stage the deployment with the Balanced protocol.
	urr := report.New()
	ctl := deploy.NewController(urr, func(up *pkgmgr.Upgrade, failures []*report.Report) (*pkgmgr.Upgrade, bool) {
		fmt.Printf("vendor: debugging %d failure report(s):\n", len(failures))
		for _, g := range urr.GroupFailures(up.ID) {
			fmt.Printf("  %s (clusters %v, %d report(s))\n", g.Signature, g.Clusters, len(g.Reports))
		}
		return fixedUpgrade(), true
	})
	out, err := ctl.Deploy(ctx, deploy.PolicyBalanced, mysql5(), dcs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noutcome: %d/%d integrated, overhead %d machine(s), %d debug round(s)\n",
		out.Integrated(), len(out.Nodes), out.Overhead, out.Rounds)

	// Verify on the real machines behind the agents.
	fmt.Println("\npost-deployment state:")
	for _, name := range srv.Agents() {
		m := machines[name]
		ref, _ := m.Package("mysql")
		my := (apps.MySQL{}).Run(m, []string{"SELECT 1"}).ExitStatus()
		php := "-"
		if _, ok := m.Package("php"); ok {
			php = (apps.PHP{}).Run(m, nil).ExitStatus()
		}
		fmt.Printf("  %-22s mysql=%s (%s) php=%s\n", name, ref.Version, my, php)
	}
}

func mysql5() *pkgmgr.Upgrade {
	return &pkgmgr.Upgrade{
		ID: "mysql-5.0.22",
		Pkg: &pkgmgr.Package{Name: "mysql", Version: "5.0.22", Files: []*machine.File{
			{Path: apps.MySQLExec, Type: machine.TypeExecutable, Data: []byte("mysqld 5.0.22"), Version: "5.0.22"},
			{Path: apps.LibMySQLPath, Type: machine.TypeSharedLib, Data: []byte("libmysqlclient 5.0"), Version: "5.0"},
		}},
		Replaces: "4.1.22",
	}
}

func fixedUpgrade() *pkgmgr.Upgrade {
	up := mysql5()
	up.ID = "mysql-5.0.22b"
	up.Pkg.Files[1] = &machine.File{Path: apps.LibMySQLPath, Type: machine.TypeSharedLib,
		Data: []byte("libmysqlclient 5.0 php4-compat"), Version: "5.0"}
	up.Migrations = []pkgmgr.FileEdit{
		{Path: "/home/user/.my.cnf", Append: []byte("# migrated-for-5\n")},
	}
	return up
}
