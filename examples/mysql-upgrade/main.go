// mysql-upgrade reruns the paper's MySQL experiment (§4.2.1) end to end:
// the 21 machine configurations of Table 2, clustered first with
// application-specific parsers for every environmental resource (Figure 6)
// and then with Mirage-supplied parsers only (Figure 7), evaluated against
// the behaviour the machines actually exhibit when the MySQL 4->5 upgrade
// is applied.
//
//	go run ./examples/mysql-upgrade
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/scenario"
)

func main() {
	behavior := scenario.MySQLBehavior()

	// Ground the labels: apply the upgrade to every machine and observe.
	observed := scenario.VerifyMySQLBehavior()
	agree := 0
	for name, b := range behavior {
		if observed[name] == b {
			agree++
		}
	}
	fmt.Printf("behaviour labels verified by execution: %d/%d machines agree\n\n", agree, len(behavior))

	byProblem := scenario.MachinesByProblem(behavior)
	fmt.Printf("PHP broken-dependency problem: %v\n", byProblem[scenario.MySQLProblemPHP])
	fmt.Printf("my.cnf legacy-config problem:  %v\n\n", byProblem[scenario.MySQLProblemMyCnf])

	fmt.Println("=== Figure 6: application-specific parsers for all resources ===")
	full := cluster.Run(cluster.Config{Diameter: 3}, scenario.MySQLFingerprints(scenario.MySQLFullRegistry()))
	report(full, behavior)

	fmt.Println("=== Figure 7: Mirage-supplied parsers only, diameter 3 ===")
	mirage := cluster.Run(cluster.Config{Diameter: 3}, scenario.MySQLFingerprints(scenario.MySQLMirageRegistry()))
	report(mirage, behavior)

	fmt.Println("=== vendor regrouping: discard my.cnf items for this upgrade ===")
	merged := cluster.Run(cluster.Config{
		Diameter:        3,
		DiscardPrefixes: []string{"/etc/mysql/my.cnf"},
	}, scenario.MySQLFingerprints(scenario.MySQLFullRegistry()))
	report(merged, behavior)
}

func report(clusters []*cluster.Cluster, behavior cluster.Behavior) {
	q := cluster.Evaluate(clusters, behavior)
	kind := "imperfect"
	switch {
	case q.Ideal():
		kind = "ideal"
	case q.Sound():
		kind = "sound"
	}
	fmt.Printf("%d clusters, C=%d, w=%d (%s)\n", q.Clusters, q.C, q.W, kind)
	if q.W > 0 {
		fmt.Printf("misplaced machines: %v\n", q.Misplaced)
	}
	fmt.Println(scenario.FormatClusters(clusters, behavior))
}
