// Control-plane walkthrough: Mirage's rollout lifecycle driven entirely
// through the HTTP admin API, the way an operator (or mirage-ctl) does.
//
// The program builds a networked fleet (vendor transport server + six TCP
// agents), mounts the orchestrator's HTTP control plane, and then — as a
// pure HTTP client — starts a journaled staged rollout, watches its event
// stream by long-poll, pauses it at a stage barrier, inspects the half
// deployed fleet, resumes it, waits for convergence, and finally starts a
// second concurrent rollout to show the orchestrator multiplexing, and —
// the failure half of the lifecycle — a rollout whose canary gate fails
// on a fleet with legacy user configuration, ending not stranded but in
// a journaled automatic rollback to the baseline version. A final act
// shows live-fleet drift gating: a rollout started with a hold drift
// policy pauses at a stage barrier when a member of its plan drifts
// mid-flight, and resumes on the operator's acknowledgement. Every
// control action goes over the wire; nothing touches the Handle
// directly.
//
//	go run ./examples/control-plane
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/deploy"
	"repro/internal/machine"
	"repro/internal/orchestrator"
	"repro/internal/pkgmgr"
	"repro/internal/rollout"
	"repro/internal/staging"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

func userMachine(name string) *machine.Machine {
	m := machine.New(name)
	m.SetEnv("HOME", "/home/user")
	m.WriteFile(&machine.File{Path: apps.MySQLExec, Type: machine.TypeExecutable,
		Data: []byte("mysqld 4.1.22"), Version: "4.1.22"})
	m.InstallPackage(machine.PackageRef{Name: "mysql", Version: "4.1.22"}, []string{apps.MySQLExec})
	return m
}

func mysql5() *pkgmgr.Upgrade {
	return &pkgmgr.Upgrade{
		ID: "mysql-5.0.22",
		Pkg: &pkgmgr.Package{Name: "mysql", Version: "5.0.22", Files: []*machine.File{
			{Path: apps.MySQLExec, Type: machine.TypeExecutable, Data: []byte("mysqld 5.0.22"), Version: "5.0.22"},
		}},
		Replaces: "4.1.22",
	}
}

// mysql4 is the baseline artifact a rollback restores: version N kept
// in the vendor's release store for exactly this purpose.
func mysql4() *pkgmgr.Upgrade {
	return &pkgmgr.Upgrade{
		ID: "mysql-4.1.22",
		Pkg: &pkgmgr.Package{Name: "mysql", Version: "4.1.22", Files: []*machine.File{
			{Path: apps.MySQLExec, Type: machine.TypeExecutable, Data: []byte("mysqld 4.1.22"), Version: "4.1.22"},
		}},
		Replaces: "5.0.22",
	}
}

func main() {
	ctx := context.Background()

	// 1. A networked fleet: vendor server, six agents over loopback TCP,
	// grouped into three clusters of deployment. Chunks travel as binary
	// frames on the control channel; a production fleet would additionally
	// start each agent with -peer-listen so later waves pull chunk misses
	// from already-gated peers (and -json-chunks on the vendor restores the
	// legacy base64 encoding for old agents).
	srv, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	machines := map[string]*machine.Machine{}
	var names []string
	for c := 0; c < 3; c++ {
		for _, role := range []string{"rep", "oth"} {
			name := fmt.Sprintf("c%d-%s", c, role)
			names = append(names, name)
			machines[name] = userMachine(name)
			go transport.NewAgent(machines[name]).Run(srv.Addr())
		}
	}
	if got := srv.WaitForAgents(len(names), 5*time.Second); got != len(names) {
		log.Fatalf("agents: %d/%d", got, len(names))
	}
	clusters := func() []*deploy.Cluster {
		var cs []*deploy.Cluster
		for c := 0; c < 3; c++ {
			cs = append(cs, &deploy.Cluster{
				ID: deploy.ClusterName(c), Distance: c + 1,
				Representatives: []deploy.Node{srv.Node(fmt.Sprintf("c%d-rep", c))},
				Others:          []deploy.Node{srv.Node(fmt.Sprintf("c%d-oth", c))},
			})
		}
		return cs
	}

	// 2. The control plane: an orchestrator journaling one file per
	// rollout, exposed over HTTP exactly as mirage-vendor -serve mounts it.
	dir, err := os.MkdirTemp("", "mirage-control-plane")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	orch := orchestrator.New(dir)
	// One telemetry registry and tracer for the whole control plane: the
	// transport books per-op RPC latency into the registry, every rollout
	// records a span trace, and GET /metrics / GET /rollouts/{id}/trace
	// serve both — exactly how mirage-vendor wires them.
	telem := telemetry.NewRegistry()
	srv.Telemetry = telem
	orch.Telemetry = telem
	orch.Tracer = &telemetry.Tracer{}
	// Production sizing knobs (all exposed as mirage-vendor flags): the
	// agent registry shards with -shards (default 4x GOMAXPROCS — matters
	// from ~10k agents up); orch.Budget = deploy.NewBudget(n) is
	// -worker-budget, one vendor-wide cap on in-flight member RPCs shared
	// by every rollout; orch.MaxActive/MaxQueued are
	// -max-rollouts/-max-queued — beyond them POST /rollouts returns 429
	// with a Retry-After header. Unset here: a six-agent walkthrough
	// needs none of them.
	// rbClusters is filled in act 7: the fleet the rollback walkthrough
	// runs over. The launcher routes armed requests to it.
	var rbClusters []*deploy.Cluster
	api := &orchestrator.API{
		Orch: orch,
		Launch: func(req orchestrator.StartRequest) (orchestrator.Spec, error) {
			policy := deploy.PolicyBalanced
			if req.Policy != "" {
				if p, ok := staging.ParsePolicy(req.Policy); ok {
					policy = p
				}
			}
			if req.AutoRollback {
				return orchestrator.Spec{
					Policy:       policy,
					Upgrade:      mysql5(),
					Clusters:     rbClusters,
					Baseline:     mysql4(),
					AutoRollback: true,
					Gate:         req.GatePolicy(),
					Journal:      req.Journal,
					Resume:       req.Resume,
				}, nil
			}
			return orchestrator.Spec{
				Policy:   policy,
				Upgrade:  mysql5(),
				Clusters: clusters(),
				Drift:    req.DriftPolicy(),
				Journal:  req.Journal,
				Resume:   req.Resume,
			}, nil
		},
	}
	web := httptest.NewServer(api.Handler())
	defer web.Close()
	fmt.Printf("control plane on %s\n", web.URL)

	// 3. From here on we are an HTTP client only — the mirage-ctl library.
	ctl := &orchestrator.Client{Base: web.URL, HTTP: &http.Client{}}

	st, err := ctl.Start(ctx, orchestrator.StartRequest{Policy: "balanced"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("started rollout %s: policy=%s stages=%d journal=%s\n",
		st.ID, st.Policy, st.Stages, filepath.Base(st.Journal))

	// 4. Pause. The rollout finishes whatever stage is in flight and then
	// holds at the next stage barrier — stages are the unit of
	// consistency, so however the pause races the plan, the held fleet is
	// always a clean prefix of it: some clusters done, the rest untouched.
	if _, err := ctl.Pause(ctx, st.ID); err != nil {
		log.Fatal(err)
	}
	for st.State != orchestrator.StatePaused && !st.State.Terminal() {
		if st, err = ctl.Get(ctx, st.ID); err != nil {
			log.Fatal(err)
		}
	}
	if st.State == orchestrator.StatePaused {
		fmt.Printf("held at a stage barrier (%d gates passed, %d/%d integrated):\n",
			st.GatesPassed, st.Integrated, len(st.Members))
		for _, name := range names {
			ref, _ := machines[name].Package("mysql")
			fmt.Printf("  %-8s mysql %s\n", name, ref.Version)
		}
	}

	// 5. Resume, drain the event stream by long-poll, wait for the end.
	if _, err := ctl.Resume(ctx, st.ID); err != nil {
		log.Fatal(err)
	}
	since := 0
	for {
		page, err := ctl.Events(ctx, st.ID, since, 2*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		for _, ev := range page.Events {
			if ev.Type == rollout.RecTested || ev.Type == rollout.RecGate {
				fmt.Printf("  event %-11s stage=%d node=%s\n", ev.Type, ev.Stage, ev.Node)
			}
		}
		since = page.Next
		if page.Done {
			break
		}
	}
	st, err = ctl.Wait(ctx, st.ID, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rollout %s: %s, %d/%d integrated, final=%s\n",
		st.ID, st.State, st.Integrated, len(st.Members), st.FinalID)

	// 6. The orchestrator multiplexes: a second rollout (urgent path,
	// NoStaging) runs through the same fleet while we watch the list.
	st2, err := ctl.Start(ctx, orchestrator.StartRequest{Policy: "nostaging"})
	if err != nil {
		log.Fatal(err)
	}
	if st2, err = ctl.Wait(ctx, st2.ID, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	all, err := ctl.List(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rollouts on this control plane:")
	for _, s := range all {
		fmt.Printf("  %-4s %-10s policy=%-10s integrated=%d/%d events=%d\n",
			s.ID, s.State, s.Policy, s.Integrated, len(s.Members), s.Events)
	}

	// 7. The failure half of the lifecycle: gate failure → journaled
	// automatic rollback. A second fleet joins; its far cluster carries a
	// legacy ~/.my.cnf whose option syntax MySQL 5 rejects (the paper's §5
	// user-configuration incompatibility) and there is no fixer, so the
	// rollout must abandon. The start request arms auto_rollback with a
	// canary gate; the near cluster integrates 5.0.22 first, the far
	// cluster's representative fails its gate, and instead of stranding
	// the fleet half-upgraded the control plane drives every integrated
	// member back to 4.1.22 — each revert a durable journal record.
	var rbNames []string
	for c := 0; c < 2; c++ {
		for _, role := range []string{"rep", "oth"} {
			name := fmt.Sprintf("rb-c%d-%s", c, role)
			rbNames = append(rbNames, name)
			m := userMachine(name)
			if c == 1 {
				m.WriteFile(&machine.File{Path: "/home/user/.my.cnf", Type: machine.TypeConfig,
					Data: []byte("[mysqld]\nold-passwords\nset-variable = key_buffer=16M\n")})
			}
			machines[name] = m
			go transport.NewAgent(m).Run(srv.Addr())
		}
	}
	total := len(names) + len(rbNames)
	if got := srv.WaitForAgents(total, 5*time.Second); got != total {
		log.Fatalf("agents: %d/%d", got, total)
	}
	// Enroll mysql usage on the new fleet: validation only exercises the
	// applications a machine's usage store has recorded, so without this
	// every sandboxed test would be vacuously green.
	for _, name := range rbNames {
		if _, err := srv.Identify(ctx, name, "mysql", [][]string{{"SELECT 1"}}); err != nil {
			log.Fatal(err)
		}
		if _, err := srv.Record(ctx, name, "mysql", []string{"SELECT 1"}); err != nil {
			log.Fatal(err)
		}
	}
	for c := 0; c < 2; c++ {
		rbClusters = append(rbClusters, &deploy.Cluster{
			ID: fmt.Sprintf("rb-%d", c), Distance: c + 1,
			Representatives: []deploy.Node{srv.Node(fmt.Sprintf("rb-c%d-rep", c))},
			Others:          []deploy.Node{srv.Node(fmt.Sprintf("rb-c%d-oth", c))},
		})
	}
	st3, err := ctl.Start(ctx, orchestrator.StartRequest{
		Policy:        "balanced",
		AutoRollback:  true,
		GateMaxExcess: 0.1, GateMinSamples: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if st3, err = ctl.Wait(ctx, st3.ID, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rollout %s: %s — %d members rolled back to %s\n",
		st3.ID, st3.State, st3.RolledBack, st3.Baseline)
	for _, name := range rbNames {
		ref, _ := machines[name].Package("mysql")
		fmt.Printf("  %-9s mysql %s\n", name, ref.Version)
	}
	recs, err := rollout.Load(st3.Journal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("journal %s sealed with %q — the rollout can never half-resume\n",
		filepath.Base(st3.Journal), recs[len(recs)-1].Type)

	// 8. Live-fleet drift gating. A rollout's plan is built from a
	// snapshot of the fleet; machines keep changing underneath it. Started
	// with drift_action=hold (and the default drift_max of zero), the
	// first rep-invalidating drifted member pauses the rollout at its next
	// stage barrier with Status.DriftHold naming the cluster over budget,
	// and resume is the operator's acknowledgement. In mirage-vendor these
	// events come from the fleetwatch monitor folding agents' -watch
	// profile-delta pushes; this walkthrough fleet was clustered by hand,
	// so we bridge one event into the orchestrator directly, exactly as
	// the vendor's delta handler does.
	var st4 orchestrator.Status
	for attempt := 0; ; attempt++ {
		if st4, err = ctl.Start(ctx, orchestrator.StartRequest{
			Policy: "balanced", DriftAction: "hold",
		}); err != nil {
			log.Fatal(err)
		}
		orch.NotifyDrift(orchestrator.DriftEvent{
			Machine: "c1-oth", To: "somewhere-new", Class: "drifted", Version: 1,
		})
		for st4.DriftHold == "" && !st4.State.Terminal() {
			if st4, err = ctl.Get(ctx, st4.ID); err != nil {
				log.Fatal(err)
			}
		}
		if st4.DriftHold != "" {
			break
		}
		// The six-agent rollout outran the drift event; run it again.
		if attempt == 5 {
			log.Fatalf("rollout %s never observed the drift event", st4.ID)
		}
	}
	fmt.Printf("rollout %s drift-held: %s (drifted=%d)\n",
		st4.ID, st4.DriftHold, st4.Drifted)
	for st4.State != orchestrator.StatePaused && !st4.State.Terminal() {
		if st4, err = ctl.Get(ctx, st4.ID); err != nil {
			log.Fatal(err)
		}
	}
	if st4.State == orchestrator.StatePaused {
		if _, err := ctl.Resume(ctx, st4.ID); err != nil {
			log.Fatal(err)
		}
	}
	if st4, err = ctl.Wait(ctx, st4.ID, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rollout %s after operator ack: %s, %d/%d integrated (c1-oth drifted=%v)\n",
		st4.ID, st4.State, st4.Integrated, len(st4.Members),
		st4.Members["c1-oth"].Drifted)

	// 9. Observability: the same admin mux serves liveness, Prometheus
	// metrics (the scalar families plus the telemetry registry's latency
	// histograms) and each rollout's span trace — raw JSON or Chrome
	// trace-event format that loads straight into Perfetto. With
	// MIRAGE_METRICS_OUT / MIRAGE_TRACE_OUT set the scrapes are saved to
	// files; CI runs this program exactly that way and asserts on them.
	fetch := func(path string) []byte {
		resp, err := http.Get(web.URL + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("GET %s: %s: %s", path, resp.Status, body)
		}
		return body
	}
	health := fetch("/healthz")
	metrics := fetch("/metrics")
	for _, fam := range []string{
		"mirage_rpc_latency_seconds", "mirage_member_duration_seconds",
		"mirage_budget_wait_seconds", "mirage_journal_fsync_seconds",
	} {
		if !strings.Contains(string(metrics), "# TYPE "+fam+" histogram") {
			log.Fatalf("/metrics is missing histogram family %s", fam)
		}
	}
	var snap telemetry.TraceSnapshot
	if err := json.Unmarshal(fetch("/rollouts/"+st.ID+"/trace"), &snap); err != nil {
		log.Fatal(err)
	}
	kinds := map[string]int{}
	for _, s := range snap.Spans {
		kinds[s.Kind]++
	}
	for _, k := range []string{"rollout", "stage", "wave", "test", "integrate", "rpc"} {
		if kinds[k] == 0 {
			log.Fatalf("trace for %s has no %q spans (got %v)", st.ID, k, kinds)
		}
	}
	chrome := fetch("/rollouts/" + st.ID + "/trace?format=chrome")
	fmt.Printf("observability: healthz=%s\n", strings.TrimSpace(string(health)))
	fmt.Printf("observability: /metrics %d bytes; trace for %s: %d spans (%d rpc), chrome export %d bytes\n",
		len(metrics), st.ID, len(snap.Spans), kinds["rpc"], len(chrome))
	if out := os.Getenv("MIRAGE_METRICS_OUT"); out != "" {
		if err := os.WriteFile(out, metrics, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if out := os.Getenv("MIRAGE_TRACE_OUT"); out != "" {
		if err := os.WriteFile(out, chrome, 0o644); err != nil {
			log.Fatal(err)
		}
	}
}
