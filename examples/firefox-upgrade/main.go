// firefox-upgrade reruns the paper's Firefox experiment (§4.2.2): the six
// profiles of Table 3 clustered with vendor preference-file parsers
// (Figure 8) and with content fingerprinting at diameters 4 and 6
// (Figure 9), showing how a two-unit diameter difference flips the
// clustering from ideal to imperfect — and why parsers that discard
// user-specific noise are the only robust answer.
//
//	go run ./examples/firefox-upgrade
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/scenario"
)

func main() {
	behavior := scenario.FirefoxBehavior()

	observed := scenario.VerifyFirefoxBehavior()
	agree := 0
	for name, b := range behavior {
		if observed[name] == b {
			agree++
		}
	}
	fmt.Printf("behaviour labels verified by execution: %d/%d machines agree\n", agree, len(behavior))
	fmt.Println("(the 2.0 upgrade silently mis-renders pages on migrated profiles —")
	fmt.Println(" only I/O comparison catches it; the browser never crashes)")
	fmt.Println()

	fmt.Println("=== Figure 8: vendor parsers for the preference files ===")
	report(cluster.Run(cluster.Config{Diameter: 3},
		scenario.FirefoxFingerprints(scenario.FirefoxFullRegistry())), behavior)

	fmt.Println("=== Figure 9 (left): Mirage parsers only, diameter 4 ===")
	report(cluster.Run(cluster.Config{Diameter: 4},
		scenario.FirefoxFingerprints(scenario.FirefoxMirageRegistry())), behavior)

	fmt.Println("=== Figure 9 (right): Mirage parsers only, diameter 6 ===")
	report(cluster.Run(cluster.Config{Diameter: 6},
		scenario.FirefoxFingerprints(scenario.FirefoxMirageRegistry())), behavior)

	fmt.Println("=== diameter sweep (Mirage parsers only) ===")
	fmt.Println("d  clusters  C  w")
	for d := 0; d <= 8; d++ {
		clusters := cluster.Run(cluster.Config{Diameter: d},
			scenario.FirefoxFingerprints(scenario.FirefoxMirageRegistry()))
		q := cluster.Evaluate(clusters, behavior)
		fmt.Printf("%d  %8d  %d  %d\n", d, q.Clusters, q.C, q.W)
	}
}

func report(clusters []*cluster.Cluster, behavior cluster.Behavior) {
	q := cluster.Evaluate(clusters, behavior)
	kind := "imperfect"
	switch {
	case q.Ideal():
		kind = "ideal"
	case q.Sound():
		kind = "sound"
	}
	fmt.Printf("%d clusters, C=%d, w=%d (%s)\n", q.Clusters, q.C, q.W, kind)
	fmt.Println(scenario.FormatClusters(clusters, behavior))
}
