// Quickstart: the smallest end-to-end Mirage pipeline.
//
// A vendor identifies the environmental resources of an application on its
// reference machine, clusters a five-machine fleet by environment, and
// stages a MySQL 4->5 upgrade: representatives test first, a failure is
// reported with a reproducible image, the vendor ships a corrected
// upgrade, and the whole fleet converges.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/machine"
	"repro/internal/orchestrator"
	"repro/internal/parser"
	"repro/internal/pkgmgr"
	"repro/internal/report"
)

func file(path string, t machine.FileType, data, version string) *machine.File {
	return &machine.File{Path: path, Type: t, Data: []byte(data), Version: version}
}

// buildMachine assembles a MySQL 4.1.22 machine; kind selects the
// environment variant.
func buildMachine(name, kind string) *machine.Machine {
	m := machine.New(name)
	m.SetEnv("HOME", "/home/user")
	m.WriteFile(file("/lib/libc.so", machine.TypeSharedLib, "libc 2.4", "2.4"))
	m.WriteFile(file(apps.MySQLExec, machine.TypeExecutable, "mysqld 4.1.22", "4.1.22"))
	m.WriteFile(file(apps.LibMySQLPath, machine.TypeSharedLib, "libmysqlclient 4.1", "4.1"))
	m.WriteFile(file("/etc/mysql/my.cnf", machine.TypeConfig, "[mysqld]\nport = 3306\n", ""))
	m.InstallPackage(machine.PackageRef{Name: "mysql", Version: "4.1.22"},
		[]string{apps.MySQLExec, apps.LibMySQLPath})
	if kind == "php4" {
		// PHP 4 compiled with MySQL support: the upgrade's library bump
		// will break it (the paper's broken-dependency example).
		m.WriteFile(file(apps.PHPExec, machine.TypeExecutable, "php 4.4.6", "4.4.6"))
		m.InstallPackage(machine.PackageRef{Name: "php", Version: "4.4.6"}, []string{apps.PHPExec})
	}
	return m
}

func main() {
	// 1. The vendor: reference machine, parser registry, repository, URR.
	vendor := core.NewVendor(buildMachine("reference", "plain"))
	vendor.Registry.RegisterPath("/etc/mysql/my.cnf", parser.ConfigParser{})
	vendor.IdentifyResources(apps.MySQL{}, [][]string{{"SELECT 1"}, {"SELECT 2"}})
	fmt.Printf("identified %d environmental resources for mysql\n", len(vendor.Resources["mysql"]))

	// 2. The fleet: three plain machines, two with PHP 4.
	fleet := core.NewFleet(vendor,
		buildMachine("alpha", "plain"),
		buildMachine("bravo", "plain"),
		buildMachine("charlie", "plain"),
		buildMachine("delta", "php4"),
		buildMachine("echo", "php4"),
	)
	for _, u := range fleet.Machines {
		u.IdentifyLocal(apps.MySQL{}, [][]string{{"SELECT 1"}})
		u.RecordBaseline(apps.MySQL{}, []string{"SELECT 1"})
		if _, ok := u.M.Package("php"); ok {
			u.IdentifyLocal(apps.PHP{}, [][]string{nil})
			u.RecordBaseline(apps.PHP{}, nil)
		}
	}

	// 3. Cluster by environment.
	ctx := context.Background()
	clustering, err := vendor.ClusterFleet(ctx, fleet, "mysql", cluster.Config{Diameter: 3}, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range clustering.Clusters {
		fmt.Printf("cluster %d (distance %d): %v\n", c.ID, c.Distance, c.Machines)
	}

	// 4. The upgrade, and the vendor's debugging loop.
	upgrade := &pkgmgr.Upgrade{
		ID: "mysql-5.0.22",
		Pkg: &pkgmgr.Package{Name: "mysql", Version: "5.0.22", Files: []*machine.File{
			file(apps.MySQLExec, machine.TypeExecutable, "mysqld 5.0.22", "5.0.22"),
			file(apps.LibMySQLPath, machine.TypeSharedLib, "libmysqlclient 5.0", "5.0"),
		}},
		Replaces: "4.1.22",
	}
	vendor.Repo.Add(upgrade.Pkg)

	fix := func(up *pkgmgr.Upgrade, failures []*report.Report) (*pkgmgr.Upgrade, bool) {
		fmt.Printf("vendor: %d failure report(s); first: %v from %s\n",
			len(failures), failures[0].FailedApps, failures[0].Machine)
		fixed := &pkgmgr.Upgrade{
			ID: "mysql-5.0.22b",
			Pkg: &pkgmgr.Package{Name: "mysql", Version: "5.0.22", Files: []*machine.File{
				file(apps.MySQLExec, machine.TypeExecutable, "mysqld 5.0.22", "5.0.22"),
				file(apps.LibMySQLPath, machine.TypeSharedLib, "libmysqlclient 5.0 php4-compat", "5.0"),
			}},
			Replaces: "4.1.22",
		}
		vendor.Repo.Add(fixed.Pkg)
		return fixed, true
	}

	// 5. Staged deployment, as a rollout on the orchestrator: Start
	// returns a handle — the rollout is observable (Status, Events),
	// pausable and abortable while it runs; Wait gives the outcome. The
	// one-call form of the same thing is vendor.StageDeployment(ctx, ...).
	// Over real TCP the same rollout ships upgrade bytes as binary chunk
	// frames, and agents started with -peer-listen fetch misses from
	// already-gated peers before falling back to the vendor (-json-chunks
	// keeps the legacy base64 wire format for old agents).
	orch := orchestrator.New("")
	h, err := vendor.StartDeployment(ctx, orch, deploy.PolicyBalanced, upgrade, clustering, fix)
	if err != nil {
		log.Fatal(err)
	}
	for ev := range h.Events(ctx) {
		fmt.Printf("  event %-12s stage=%d node=%s\n", ev.Type, ev.Stage, ev.Node)
	}
	out, err := h.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rollout %s deployed: %d/%d machines integrated, overhead %d, %d debug round(s)\n",
		h.ID(), out.Integrated(), len(out.Nodes), out.Overhead, out.Rounds)

	// 6. Everything still works in production.
	for _, u := range fleet.Machines {
		status := (apps.MySQL{}).Run(u.M, []string{"SELECT 1"}).ExitStatus()
		ref, _ := u.M.Package("mysql")
		fmt.Printf("  %-8s mysql %s: %s\n", u.Name(), ref.Version, status)
	}
}
