package repro

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices called out in DESIGN.md.
// Benchmarks both measure the cost of each pipeline stage and re-assert
// the headline result of the experiment they regenerate, so
// `go test -bench=. -benchmem` doubles as a reproduction run.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/benchjson"
	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/fingerprint"
	"repro/internal/machine"
	"repro/internal/orchestrator"
	"repro/internal/parser"
	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/resource"
	"repro/internal/rollout"
	"repro/internal/scenario"
	"repro/internal/simulator"
	"repro/internal/staging"
	"repro/internal/survey"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// BenchmarkFigure1 regenerates the upgrade-frequency histogram.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := survey.Load()
		fig := ds.Figure1()
		total := 0
		for _, row := range fig {
			for _, n := range row {
				total += n
			}
		}
		if total != 50 {
			b.Fatalf("figure 1 total = %d", total)
		}
	}
}

// BenchmarkFigure2 regenerates the reluctance cross-table.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := survey.Load()
		fig := ds.Figure2()
		if fig[true][true]+fig[true][false] != 35 {
			b.Fatal("refrainers != 70%")
		}
	}
}

// BenchmarkFigure3 regenerates the failure-rate histogram.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := survey.Load()
		if ds.MedianFailureRate() != 5 {
			b.Fatal("median != 5")
		}
	}
}

// BenchmarkTable1 runs the identification heuristic over all four
// application populations and checks the published row values.
func BenchmarkTable1(b *testing.B) {
	want := map[string][5]int{
		"firefox": {907, 839, 1, 23, 7},
		"apache":  {400, 251, 133, 0, 2},
		"php":     {215, 206, 0, 0, 0},
		"mysql":   {286, 250, 0, 33, 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range scenario.Table1Populations() {
			row, _ := scenario.EvaluateTable1(p)
			got := [5]int{row.FilesTotal, row.EnvResources, row.FalsePositives, row.FalseNegatives, row.VendorRules}
			if got != want[p.App] {
				b.Fatalf("%s: %v != %v", p.App, got, want[p.App])
			}
		}
	}
}

// BenchmarkFigure6 clusters the Table 2 machines with full parsers.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		clusters := cluster.Run(cluster.Config{Diameter: 3},
			scenario.MySQLFingerprints(scenario.MySQLFullRegistry()))
		q := cluster.Evaluate(clusters, scenario.MySQLBehavior())
		if !q.Sound() || q.C != 12 {
			b.Fatalf("fig6: C=%d w=%d", q.C, q.W)
		}
	}
}

// BenchmarkFigure7 clusters with Mirage-supplied parsers only.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		clusters := cluster.Run(cluster.Config{Diameter: 3},
			scenario.MySQLFingerprints(scenario.MySQLMirageRegistry()))
		if q := cluster.Evaluate(clusters, scenario.MySQLBehavior()); q.W != 2 {
			b.Fatalf("fig7: w=%d", q.W)
		}
	}
}

// BenchmarkFigure8 clusters the Firefox machines with full parsers.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		clusters := cluster.Run(cluster.Config{Diameter: 3},
			scenario.FirefoxFingerprints(scenario.FirefoxFullRegistry()))
		if q := cluster.Evaluate(clusters, scenario.FirefoxBehavior()); !q.Sound() || q.C != 2 {
			b.Fatalf("fig8: C=%d w=%d", q.C, q.W)
		}
	}
}

// BenchmarkFigure9 runs both diameters of the Firefox content-only setup.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		left := cluster.Run(cluster.Config{Diameter: 4},
			scenario.FirefoxFingerprints(scenario.FirefoxMirageRegistry()))
		right := cluster.Run(cluster.Config{Diameter: 6},
			scenario.FirefoxFingerprints(scenario.FirefoxMirageRegistry()))
		ql := cluster.Evaluate(left, scenario.FirefoxBehavior())
		qr := cluster.Evaluate(right, scenario.FirefoxBehavior())
		if !ql.Ideal() || qr.W != 3 {
			b.Fatalf("fig9: left ideal=%v right w=%d", ql.Ideal(), qr.W)
		}
	}
}

// BenchmarkFigure10 simulates all five protocol curves at paper scale
// (100,000 machines) and checks the overhead relationships.
func BenchmarkFigure10(b *testing.B) {
	p := simulator.DefaultParams()
	for i := 0; i < b.N; i++ {
		ns := simulator.NoStaging(p, scenario.PaperDeployment(scenario.ProblemsLast))
		bb := simulator.Balanced(p, scenario.PaperDeployment(scenario.ProblemsLast))
		bw := simulator.Balanced(p, scenario.PaperDeployment(scenario.ProblemsFirst))
		rs := simulator.RandomStaging(p, scenario.PaperDeployment(scenario.ProblemsUniform), 42)
		fl := simulator.FrontLoading(p, scenario.PaperDeployment(scenario.ProblemsLast))
		if ns.Overhead != 25000 || bb.Overhead != 3 || bw.Overhead != 3 || rs.Overhead != 3 || fl.Overhead != 5 {
			b.Fatal("fig10 overhead relationships broken")
		}
	}
}

// BenchmarkFigure11 simulates the imperfect-clustering curves.
func BenchmarkFigure11(b *testing.B) {
	p := simulator.DefaultParams()
	for i := 0; i < b.N; i++ {
		first := simulator.Balanced(p, scenario.WithMisplaced(scenario.PaperDeployment(scenario.ProblemsLast), true))
		last := simulator.Balanced(p, scenario.WithMisplaced(scenario.PaperDeployment(scenario.ProblemsLast), false))
		if first.Overhead != 4 || last.Overhead != 4 {
			b.Fatalf("fig11 overhead = %d/%d", first.Overhead, last.Overhead)
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkDiameterSweep sweeps the QT diameter across the Firefox
// experiment, the design parameter Figures 7 and 9 show is hard to pick.
func BenchmarkDiameterSweep(b *testing.B) {
	fps := scenario.FirefoxFingerprints(scenario.FirefoxMirageRegistry())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := 0; d <= 8; d++ {
			cluster.Run(cluster.Config{Diameter: d}, fps)
		}
	}
}

// BenchmarkParserAblation compares clustering cost with full parsers,
// Mirage-only parsers, and no parsers at all (pure Rabin fingerprints).
func BenchmarkParserAblation(b *testing.B) {
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster.Run(cluster.Config{Diameter: 3}, scenario.MySQLFingerprints(scenario.MySQLFullRegistry()))
		}
	})
	b.Run("mirage", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster.Run(cluster.Config{Diameter: 3}, scenario.MySQLFingerprints(scenario.MySQLMirageRegistry()))
		}
	})
	b.Run("none", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster.Run(cluster.Config{Diameter: 3}, scenario.MySQLFingerprints(parser.NewRegistry()))
		}
	})
}

// BenchmarkRepresentativeCount varies representatives per cluster in the
// §4.3 simulation; more representatives marginally improve imperfect
// clustering at the cost of overhead.
func BenchmarkRepresentativeCount(b *testing.B) {
	p := simulator.DefaultParams()
	for _, reps := range []int{1, 2, 5} {
		b.Run(map[int]string{1: "reps1", 2: "reps2", 5: "reps5"}[reps], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				specs := scenario.PaperDeployment(scenario.ProblemsLast)
				for j := range specs {
					specs[j].Reps = reps
				}
				simulator.Balanced(p, specs)
			}
		})
	}
}

// BenchmarkRabinChunkSize measures content fingerprinting at several
// average chunk sizes. Small chunks would have caught the my.cnf
// difference Figure 7 misses, at higher item-count cost.
func BenchmarkRabinChunkSize(b *testing.B) {
	data := make([]byte, 64*1024)
	for i := range data {
		data[i] = byte(i*31 + i/255)
	}
	f := &machine.File{Path: "/blob", Type: machine.TypeData, Data: data}
	for _, avg := range []int{512, 4096, 16384} {
		name := map[int]string{512: "avg512", 4096: "avg4096", 16384: "avg16384"}[avg]
		b.Run(name, func(b *testing.B) {
			c := fingerprint.NewChunker(avg, avg/8, avg*4)
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				parser.ContentFingerprint(c, f)
			}
		})
	}
}

// BenchmarkSimulatorScaling measures event-driven simulation cost as the
// cluster count grows at fixed fleet size.
func BenchmarkSimulatorScaling(b *testing.B) {
	p := simulator.DefaultParams()
	for _, n := range []int{20, 100, 500} {
		name := map[int]string{20: "clusters20", 100: "clusters100", 500: "clusters500"}[n]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				simulator.Balanced(p, scenario.Deployment(100_000, n, 15, scenario.ProblemsLast))
			}
		})
	}
}

// BenchmarkFingerprintMachine measures whole-machine fingerprinting, the
// per-machine cost of the clustering pipeline.
func BenchmarkFingerprintMachine(b *testing.B) {
	m := scenario.BuildMySQLMachine(scenario.MySQLTable2()[0])
	fp := parser.NewFingerprinter(scenario.MySQLFullRegistry())
	refs := scenario.MySQLResourceRefs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp.Fingerprint(m, refs)
	}
}

// BenchmarkQTClustering measures the quadratic phase-2 cost on a synthetic
// 200-machine original cluster, the scaling concern §3.2.3 discusses.
func BenchmarkQTClustering(b *testing.B) {
	base := scenario.MySQLFingerprints(scenario.MySQLMirageRegistry())
	var fps []cluster.MachineFingerprint
	for i := 0; i < 200; i++ {
		fp := base[i%len(base)]
		fp.Name = fp.Name + "-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		fps = append(fps, fp)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.Run(cluster.Config{Diameter: 3}, fps)
	}
}

// highDupFleet builds n machine fingerprints drawn from a small pool of
// distinct profiles (parsedGroups phase-1 groups × contentVariants content
// profiles each), the shape of a production fleet: thousands of machines,
// few genuinely distinct environments. Content variants use overlapping
// chunk windows, so pairwise Manhattan distances spread from 2 upward and
// the QT phase does real merging work. Deterministic (LCG-assigned).
func highDupFleet(n, parsedGroups, contentVariants int) []cluster.MachineFingerprint {
	var pool []cluster.MachineFingerprint
	for p := 0; p < parsedGroups; p++ {
		parsed := resource.NewSet(0)
		for k := 0; k <= p; k++ {
			parsed.Add(resource.Item{Key: fmt.Sprintf("pkg.p%d.v%d", p, k), Hash: uint64(p*31 + k), Kind: resource.Parsed})
		}
		for c := 0; c < contentVariants; c++ {
			content := resource.NewSet(0)
			for k := 0; k < 4; k++ {
				content.Add(resource.Item{Key: fmt.Sprintf("blob.chunk%d", c+k), Hash: uint64(c + k), Kind: resource.Content})
			}
			pool = append(pool, cluster.MachineFingerprint{ParsedDiff: parsed, ContentDiff: content, AppSet: "apps"})
		}
	}
	ms := make([]cluster.MachineFingerprint, n)
	seed := uint64(1)
	for i := range ms {
		seed = seed*6364136223846793005 + 1442695040888963407
		fp := pool[seed%uint64(len(pool))]
		fp.Name = fmt.Sprintf("m%06d", i)
		ms[i] = fp
	}
	return ms
}

// BenchmarkClusterHighDuplication measures the multiplicity-aware
// clustering front-end on fleets with realistic duplication against the
// pre-refactor naive QT path (Config.NaiveQT). The weighted phase 2
// scales with distinct profiles — 48 here — so the 10k fleet clusters in
// roughly the time of the 1k fleet, while the naive path is cubic in the
// members of the largest original cluster. The naive 10k reference is not
// run by default (its runtime is measured in hours, which is the point);
// set MIRAGE_BENCH_NAIVE_10K=1 to run it anyway.
func BenchmarkClusterHighDuplication(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		fleet := highDupFleet(n, 4, 12)
		for _, mode := range []string{"weighted", "naive"} {
			b.Run(fmt.Sprintf("n%d/%s", n, mode), func(b *testing.B) {
				naive := mode == "naive"
				if naive && n > 1000 && os.Getenv("MIRAGE_BENCH_NAIVE_10K") == "" {
					b.Skip("naive QT at 10k machines is cubic in fleet size; set MIRAGE_BENCH_NAIVE_10K=1 to run")
				}
				want := len(cluster.Run(cluster.Config{Diameter: 3}, fleet))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cs := cluster.Run(cluster.Config{Diameter: 3, NaiveQT: naive}, fleet)
					if len(cs) != want {
						b.Fatalf("clusters = %d, want %d", len(cs), want)
					}
				}
			})
		}
	}
}

// BenchmarkIdentifyResources measures the identification heuristic over
// the Firefox population (907 files, two traces), the heaviest Table 1 row.
func BenchmarkIdentifyResources(b *testing.B) {
	p := scenario.FirefoxTable1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scenario.EvaluateTable1(p)
	}
}

// BenchmarkStagingPlan measures the shared planner at paper scale: the
// cost of computing the wave schedule both executors run.
func BenchmarkStagingPlan(b *testing.B) {
	refs := simulator.Refs(scenario.PaperDeployment(scenario.ProblemsLast))
	for _, pol := range staging.Policies() {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if plan := staging.BuildPlan(pol, refs, 42); len(plan.Stages) == 0 {
					b.Fatal("empty plan")
				}
			}
		})
	}
}

// spinNode is a deploy.Node whose validation burns a fixed amount of CPU,
// standing in for the sandboxed replay of a real user machine.
type spinNode struct {
	name string
	work int
}

func (n *spinNode) Name() string { return n.name }

func (n *spinNode) TestUpgrade(_ context.Context, up *pkgmgr.Upgrade) (*report.Report, error) {
	h := uint64(14695981039346656037)
	for i := 0; i < n.work; i++ {
		h = (h ^ uint64(i)) * 1099511628211
	}
	_ = h
	return &report.Report{UpgradeID: up.ID, Machine: n.name, Success: true}, nil
}

func (n *spinNode) Integrate(context.Context, *pkgmgr.Upgrade) error { return nil }

// BenchmarkDeployWave compares serial and pooled per-wave node testing in
// the live controller — the speedup future PRs must not regress. One
// NoStaging deployment = one merged wave over the whole fleet.
func BenchmarkDeployWave(b *testing.B) {
	mkFleet := func() []*deploy.Cluster {
		var clusters []*deploy.Cluster
		for c := 0; c < 4; c++ {
			cl := &deploy.Cluster{ID: fmt.Sprintf("c%02d", c), Distance: c + 1}
			for n := 0; n < 16; n++ {
				node := &spinNode{name: fmt.Sprintf("c%02d-n%02d", c, n), work: 200_000}
				if n == 0 {
					cl.Representatives = append(cl.Representatives, node)
				} else {
					cl.Others = append(cl.Others, node)
				}
			}
			clusters = append(clusters, cl)
		}
		return clusters
	}
	up := &pkgmgr.Upgrade{ID: "bench-v1", Pkg: &pkgmgr.Package{Name: "app", Version: "1"}}
	for _, par := range []int{1, deploy.DefaultParallelism, 16} {
		b.Run(fmt.Sprintf("workers%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctl := deploy.NewController(report.New(), nil)
				ctl.Parallelism = par
				out, err := ctl.Deploy(context.Background(), deploy.PolicyNoStaging, up, mkFleet())
				if err != nil || out.Integrated() != 64 {
					b.Fatalf("integrated=%d err=%v", out.Integrated(), err)
				}
			}
		})
	}
}

// BenchmarkSimulatorAdaptive regenerates the headline property of the new
// policy: Balanced's overhead with a strictly shorter makespan.
func BenchmarkSimulatorAdaptive(b *testing.B) {
	p := simulator.DefaultParams()
	for i := 0; i < b.N; i++ {
		ada := simulator.Adaptive(p, scenario.PaperDeployment(scenario.ProblemsLast))
		bal := simulator.Balanced(p, scenario.PaperDeployment(scenario.ProblemsLast))
		if ada.Overhead != bal.Overhead || ada.Makespan >= bal.Makespan {
			b.Fatalf("adaptive overhead=%d makespan=%v vs balanced %d/%v",
				ada.Overhead, ada.Makespan, bal.Overhead, bal.Makespan)
		}
	}
}

// --- Distribution layer (content-addressed chunked transfer) ---

// distribPayload returns deterministic pseudo-random bytes. Varied content
// matters: content-defined chunking of repetitive data degenerates into
// max-size chunks whose boundaries a single edit would shift globally.
func distribPayload(seed byte, n int) []byte {
	data := make([]byte, n)
	x := uint32(seed) + 17
	for i := range data {
		x = x*1664525 + 1013904223
		data[i] = byte(x >> 16)
	}
	return data
}

const (
	distribMachines = 50
	distribClusters = 5
	distribFileSize = 512 * 1024
)

// distribUpgrade is version N+1 of the fleet's installed package: the big
// binary with a small edit (a true CDC delta from what agents hold) plus a
// fresh small library.
func distribUpgrade() *pkgmgr.Upgrade {
	v2 := distribPayload(1, distribFileSize)
	copy(v2[distribFileSize/2:], []byte("the 5.0.22 release changes a handful of bytes in the middle"))
	return &pkgmgr.Upgrade{
		ID: "mysql-dist-5.0.22",
		Pkg: &pkgmgr.Package{Name: "mysql", Version: "5.0.22", Files: []*machine.File{
			{Path: apps.MySQLExec, Type: machine.TypeExecutable, Data: v2, Version: "5.0.22"},
			{Path: apps.LibMySQLPath, Type: machine.TypeSharedLib, Data: distribPayload(2, 16*1024), Version: "5.0"},
		}},
		Replaces: "4.1.22",
	}
}

// runDistributionDeployment spins a vendor server and a 50-agent fleet on
// loopback TCP, stages the upgrade across 5 clusters under Balanced, and
// returns the deployment's wire-byte delta.
func runDistributionDeployment(b *testing.B, inline bool) deploy.TransferStats {
	b.Helper()
	s, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	s.InlinePayloads = inline

	v1 := distribPayload(1, distribFileSize)
	for i := 0; i < distribMachines; i++ {
		m := machine.New(fmt.Sprintf("dist-%02d", i))
		m.SetEnv("HOME", "/home/user")
		m.WriteFile(&machine.File{Path: apps.MySQLExec, Type: machine.TypeExecutable, Data: v1, Version: "4.1.22"})
		m.InstallPackage(machine.PackageRef{Name: "mysql", Version: "4.1.22"}, []string{apps.MySQLExec})
		go transport.NewAgent(m).Run(s.Addr())
	}
	if got := s.WaitForAgents(distribMachines, 10*time.Second); got != distribMachines {
		b.Fatalf("only %d/%d agents registered", got, distribMachines)
	}

	names := s.Agents()
	var clusters []*deploy.Cluster
	perCluster := distribMachines / distribClusters
	for c := 0; c < distribClusters; c++ {
		cl := &deploy.Cluster{ID: deploy.ClusterName(c), Distance: c + 1}
		for n, name := range names[c*perCluster : (c+1)*perCluster] {
			if n == 0 {
				cl.Representatives = append(cl.Representatives, s.Node(name))
			} else {
				cl.Others = append(cl.Others, s.Node(name))
			}
		}
		clusters = append(clusters, cl)
	}

	ctl := deploy.NewController(report.New(), nil)
	ctl.Transfer = s.TransferSnapshot
	out, err := ctl.Deploy(context.Background(), deploy.PolicyBalanced, distribUpgrade(), clusters)
	if err != nil {
		b.Fatal(err)
	}
	if out.Integrated() != distribMachines {
		b.Fatalf("integrated = %d/%d", out.Integrated(), distribMachines)
	}
	return out.Transfer
}

// BenchmarkDistribution measures the bytes-on-wire and wall clock of a
// 50-machine staged deployment under the legacy inline transport versus
// content-addressed chunked distribution, and re-asserts the headline
// property: chunked distribution moves at least 10x fewer bytes, because
// agents seed their chunk caches from the installed version and fetch
// only the CDC delta. Set MIRAGE_BENCH_DISTRIB_JSON to a path to emit a
// machine-readable summary (the CI perf-trajectory artifact).
func BenchmarkDistribution(b *testing.B) {
	type modeResult struct {
		WireBytes  int64   `json:"wire_bytes"`
		ChunkBytes int64   `json:"chunk_bytes"`
		Frames     int64   `json:"frames"`
		NsPerOp    float64 `json:"ns_per_op"`
	}
	results := make(map[string]*modeResult)
	for _, mode := range []string{"inline", "chunked"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			var last deploy.TransferStats
			for i := 0; i < b.N; i++ {
				last = runDistributionDeployment(b, mode == "inline")
			}
			b.ReportMetric(float64(last.Bytes), "wirebytes/op")
			b.ReportMetric(float64(last.ChunkBytes), "chunkbytes/op")
			results[mode] = &modeResult{
				WireBytes:  last.Bytes,
				ChunkBytes: last.ChunkBytes,
				Frames:     last.Frames,
				NsPerOp:    float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			}
		})
	}
	inline, chunked := results["inline"], results["chunked"]
	if inline == nil || chunked == nil || chunked.WireBytes == 0 {
		b.Fatal("benchmark sub-runs missing")
	}
	reduction := float64(inline.WireBytes) / float64(chunked.WireBytes)
	if reduction < 10 {
		b.Fatalf("chunked distribution saves only %.1fx bytes-on-wire (inline %d, chunked %d), want >= 10x",
			reduction, inline.WireBytes, chunked.WireBytes)
	}
	b.Logf("bytes-on-wire: inline %d, chunked %d (%.1fx reduction)",
		inline.WireBytes, chunked.WireBytes, reduction)
	summary := []benchjson.Result{
		{Name: "BenchmarkDistribution", N: distribMachines, Metrics: map[string]float64{
			"clusters": distribClusters, "payload_bytes": distribFileSize + 16*1024,
			"reduction": reduction,
		}},
	}
	for _, mode := range []string{"inline", "chunked"} {
		r := results[mode]
		summary = append(summary, benchjson.Result{
			Name: "BenchmarkDistribution/" + mode, N: distribMachines,
			Labels: map[string]string{"mode": mode},
			Metrics: map[string]float64{
				"wire_bytes": float64(r.WireBytes), "chunk_bytes": float64(r.ChunkBytes),
				"frames": float64(r.Frames), "ns_per_op": r.NsPerOp,
			},
		})
	}
	if _, err := benchjson.WriteEnv("MIRAGE_BENCH_DISTRIB_JSON", summary); err != nil {
		b.Fatal(err)
	}
}

// --- Peer swarming (vendor egress vs fleet size) ---

const (
	swarmClusters = 5
	swarmFileSize = 512 * 1024
)

// swarmUpgrade carries a payload unrelated to anything the fleet has
// installed, so every chunk misses every seeded cache — the worst case
// for vendor egress and exactly what the peer tier exists to absorb.
func swarmUpgrade() *pkgmgr.Upgrade {
	return &pkgmgr.Upgrade{
		ID: "mysql-swarm-5.0.22",
		Pkg: &pkgmgr.Package{Name: "mysql", Version: "5.0.22", Files: []*machine.File{
			{Path: apps.MySQLExec, Type: machine.TypeExecutable, Data: distribPayload(7, swarmFileSize), Version: "5.0.22"},
			{Path: apps.LibMySQLPath, Type: machine.TypeSharedLib, Data: distribPayload(8, 16*1024), Version: "5.0"},
		}},
		Replaces: "4.1.22",
	}
}

// runSwarmDeployment stages swarmUpgrade over a fleet of peer-serving
// agents on loopback TCP, with peer hinting on or off, and returns the
// deployment's transfer delta. Every agent runs a peer chunk server and
// gated waves are marked eligible, so with swarming on the vendor seeds
// roughly one payload copy per cluster and the rest moves peer-to-peer.
func runSwarmDeployment(b *testing.B, fleet int, swarm bool) deploy.TransferStats {
	b.Helper()
	s, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	s.DisablePeers = !swarm

	agents := make([]*transport.Agent, fleet)
	for i := 0; i < fleet; i++ {
		m := machine.New(fmt.Sprintf("swarm-%03d", i))
		m.SetEnv("HOME", "/home/user")
		m.WriteFile(&machine.File{Path: apps.MySQLExec, Type: machine.TypeExecutable,
			Data: distribPayload(1, 64*1024), Version: "4.1.22"})
		m.InstallPackage(machine.PackageRef{Name: "mysql", Version: "4.1.22"}, []string{apps.MySQLExec})
		a := transport.NewAgent(m)
		if _, err := a.ServePeers("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		agents[i] = a
		go a.Run(s.Addr())
	}
	defer func() {
		for _, a := range agents {
			a.ClosePeers()
		}
	}()
	if got := s.WaitForAgents(fleet, 10*time.Second); got != fleet {
		b.Fatalf("only %d/%d agents registered", got, fleet)
	}

	names := s.Agents()
	perCluster := fleet / swarmClusters
	var clusters []*deploy.Cluster
	for c := 0; c < swarmClusters; c++ {
		cl := &deploy.Cluster{ID: deploy.ClusterName(c), Distance: c + 1}
		for n, name := range names[c*perCluster : (c+1)*perCluster] {
			if n == 0 {
				cl.Representatives = append(cl.Representatives, s.Node(name))
			} else {
				cl.Others = append(cl.Others, s.Node(name))
			}
		}
		clusters = append(clusters, cl)
	}

	ctl := deploy.NewController(report.New(), nil)
	ctl.Transfer = s.TransferSnapshot
	if swarm {
		ctl.GatedMembers = s.MarkPeerEligible
	}
	out, err := ctl.Deploy(context.Background(), deploy.PolicyBalanced, swarmUpgrade(), clusters)
	if err != nil {
		b.Fatal(err)
	}
	if out.Integrated() != fleet {
		b.Fatalf("integrated = %d/%d", out.Integrated(), fleet)
	}
	return out.Transfer
}

// BenchmarkSwarm measures vendor chunk egress against fleet size with the
// peer tier on and off, and re-asserts the tier's headline property:
// with swarming, doubling the fleet grows vendor egress by less than
// 1.5x (the vendor seeds ~one copy per cluster and gated waves serve the
// rest), while without it egress is O(fleet). Set MIRAGE_BENCH_SWARM_JSON
// to a path to emit the machine-readable summary (the CI perf artifact).
func BenchmarkSwarm(b *testing.B) {
	fleets := []int{25, 50, 100}
	type sizeResult struct {
		VendorChunkBytes int64 `json:"vendor_chunk_bytes"`
		VendorBytes      int64 `json:"vendor_bytes"`
		PeerBytes        int64 `json:"peer_bytes"`
		PeerHits         int64 `json:"peer_hits"`
		VendorFallbacks  int64 `json:"vendor_fallbacks"`
	}
	results := map[string]map[int]*sizeResult{"swarm": {}, "noswarm": {}}
	for _, mode := range []string{"swarm", "noswarm"} {
		for _, fleet := range fleets {
			mode, fleet := mode, fleet
			b.Run(fmt.Sprintf("%s/agents%d", mode, fleet), func(b *testing.B) {
				var last deploy.TransferStats
				for i := 0; i < b.N; i++ {
					last = runSwarmDeployment(b, fleet, mode == "swarm")
				}
				b.ReportMetric(float64(last.ChunkBytes), "vendorchunkbytes/op")
				b.ReportMetric(float64(last.PeerBytes), "peerbytes/op")
				results[mode][fleet] = &sizeResult{
					VendorChunkBytes: last.ChunkBytes,
					VendorBytes:      last.Bytes,
					PeerBytes:        last.PeerBytes,
					PeerHits:         last.PeerHits,
					VendorFallbacks:  last.VendorFallbacks,
				}
			})
		}
	}
	for _, fleet := range fleets {
		if results["swarm"][fleet] == nil || results["noswarm"][fleet] == nil {
			b.Fatal("benchmark sub-runs missing")
		}
	}
	// Swarming on: vendor egress must be sublinear — 2x fleet, < 1.5x
	// chunk bytes. Off: O(fleet) — 2x fleet, > 1.7x chunk bytes (the
	// control proving the swarm, not some cache artifact, flattens it).
	for i := 1; i < len(fleets); i++ {
		small, big := fleets[i-1], fleets[i]
		on := float64(results["swarm"][big].VendorChunkBytes) / float64(results["swarm"][small].VendorChunkBytes)
		off := float64(results["noswarm"][big].VendorChunkBytes) / float64(results["noswarm"][small].VendorChunkBytes)
		if on >= 1.5 {
			b.Fatalf("swarm vendor egress grew %.2fx from %d to %d agents (%d -> %d bytes), want < 1.5x",
				on, small, big, results["swarm"][small].VendorChunkBytes, results["swarm"][big].VendorChunkBytes)
		}
		if off <= 1.7 {
			b.Fatalf("no-swarm vendor egress grew only %.2fx from %d to %d agents — control broken",
				off, small, big)
		}
		b.Logf("%d -> %d agents: vendor egress x%.2f with swarm, x%.2f without", small, big, on, off)
	}
	// The flat egress must be real offload, not caching: the peer tier
	// carried at least half the fleet's payload copies at every size.
	for _, fleet := range fleets {
		r := results["swarm"][fleet]
		if r.PeerBytes < int64(fleet/2)*swarmFileSize {
			b.Fatalf("swarm at %d agents served %d peer bytes, want >= %d",
				fleet, r.PeerBytes, int64(fleet/2)*swarmFileSize)
		}
	}
	summary := []benchjson.Result{
		{Name: "BenchmarkSwarm", Metrics: map[string]float64{
			"clusters": swarmClusters, "payload_bytes": swarmFileSize + 16*1024,
		}},
	}
	for _, mode := range []string{"swarm", "noswarm"} {
		for _, fleet := range fleets {
			r := results[mode][fleet]
			summary = append(summary, benchjson.Result{
				Name: fmt.Sprintf("BenchmarkSwarm/%s/agents%d", mode, fleet), N: fleet,
				Labels: map[string]string{"mode": mode},
				Metrics: map[string]float64{
					"vendor_chunk_bytes": float64(r.VendorChunkBytes),
					"vendor_bytes":       float64(r.VendorBytes),
					"peer_bytes":         float64(r.PeerBytes),
					"peer_hits":          float64(r.PeerHits),
					"vendor_fallbacks":   float64(r.VendorFallbacks),
				},
			})
		}
	}
	if _, err := benchjson.WriteEnv("MIRAGE_BENCH_SWARM_JSON", summary); err != nil {
		b.Fatal(err)
	}
}

// --- Rollout engine (durability + agent churn) ---

const (
	churnMachines = 36
	churnClusters = 4
	churnKilled   = 2 // permanently dead: quarantined by the rollout
	churnChurned  = 8 // killed mid-rollout, auto-revived by reconnect loops
)

// churnUpgrade is a small upgrade; the benchmark measures the churn
// machinery, not payload transfer.
func churnUpgrade() *pkgmgr.Upgrade {
	return &pkgmgr.Upgrade{
		ID: "mysql-churn-5.0.22",
		Pkg: &pkgmgr.Package{Name: "mysql", Version: "5.0.22", Files: []*machine.File{
			{Path: apps.MySQLExec, Type: machine.TypeExecutable, Data: []byte("mysqld 5.0.22"), Version: "5.0.22"},
		}},
		Replaces: "4.1.22",
	}
}

// runChurnRollout spins a vendor and a 36-agent fleet on loopback TCP,
// stages a journaled Balanced rollout across 4 clusters while a fraction
// of the fleet is killed (reconnecting agents redial and re-register with
// identity and chunk cache intact; two agents stay dead), and asserts the
// deployment completes with every reachable machine integrated and the
// dead ones quarantined.
func runChurnRollout(b *testing.B, journalPath string) *deploy.Outcome {
	b.Helper()
	s, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	stop := make(chan struct{})
	defer close(stop)

	names := make([]string, churnMachines)
	for i := range names {
		names[i] = fmt.Sprintf("churn-%02d", i)
	}
	// The permanently dead live in the farthest cluster (deployed last),
	// so they are certain to die before their wave reaches them.
	permDead := names[churnMachines-churnKilled:]
	for i, name := range names {
		m := machine.New(name)
		m.SetEnv("HOME", "/home/user")
		m.WriteFile(&machine.File{Path: apps.MySQLExec, Type: machine.TypeExecutable,
			Data: []byte("mysqld 4.1.22"), Version: "4.1.22"})
		m.InstallPackage(machine.PackageRef{Name: "mysql", Version: "4.1.22"}, []string{apps.MySQLExec})
		a := transport.NewAgent(m)
		if i >= churnMachines-churnKilled {
			go a.Run(s.Addr()) // no reconnect loop: dead stays dead
		} else {
			go a.RunWithReconnect(s.Addr(), transport.ReconnectConfig{
				MaxAttempts: 1000, BaseDelay: 2 * time.Millisecond,
				MaxDelay: 20 * time.Millisecond, Stop: stop,
			})
		}
	}
	if got := s.WaitForAgents(churnMachines, 10*time.Second); got != churnMachines {
		b.Fatalf("only %d/%d agents registered", got, churnMachines)
	}

	perCluster := churnMachines / churnClusters
	var clusters []*deploy.Cluster
	for c := 0; c < churnClusters; c++ {
		cl := &deploy.Cluster{ID: deploy.ClusterName(c), Distance: c + 1}
		for n, name := range names[c*perCluster : (c+1)*perCluster] {
			if n == 0 {
				cl.Representatives = append(cl.Representatives, s.Node(name))
			} else {
				cl.Others = append(cl.Others, s.Node(name))
			}
		}
		clusters = append(clusters, cl)
	}

	// Five retries at a 10ms doubling backoff give churned agents a ~300ms
	// window to redial (their loops come back in ~5-20ms) while bounding
	// what each permanently dead member costs its wave.
	ctl := deploy.NewController(report.New(), nil)
	ctl.TransientRetries = 5
	ctl.RetryBackoff = 10 * time.Millisecond
	ctl.Transfer = s.TransferSnapshot

	// Chaos: the permanently dead die as the rollout starts; churn victims
	// spread across the fleet are dropped on a ticker while waves run and
	// revive themselves through their reconnect loops.
	for _, name := range permDead {
		s.DropAgent(name)
	}
	var victims []string
	for i := 1; i < churnMachines-churnKilled && len(victims) < churnChurned; i += 4 {
		victims = append(victims, names[i])
	}
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for _, victim := range victims {
			select {
			case <-tick.C:
				s.DropAgent(victim)
			case <-stop:
				return
			}
		}
	}()

	eng := &rollout.Engine{Controller: ctl, Path: journalPath}
	out, err := eng.Deploy(context.Background(), deploy.PolicyBalanced, churnUpgrade(), clusters)
	if err != nil {
		b.Fatal(err)
	}
	<-chaosDone

	want := churnMachines - churnKilled
	if out.Integrated() != want {
		b.Fatalf("integrated = %d/%d (quarantined %v)", out.Integrated(), want, out.Quarantined)
	}
	if len(out.Quarantined) != churnKilled ||
		out.Quarantined[0] != permDead[0] || out.Quarantined[1] != permDead[1] {
		b.Fatalf("quarantined = %v, want %v", out.Quarantined, permDead)
	}
	return out
}

// BenchmarkRolloutChurn measures a journaled staged rollout under agent
// churn over real TCP — the durability headline: a fleet where agents
// disconnect constantly still converges, with every reachable machine
// integrated and only the permanently dead quarantined. Set
// MIRAGE_BENCH_ROLLOUT_JSON to a path to emit a machine-readable summary
// (the CI perf-trajectory artifact).
func BenchmarkRolloutChurn(b *testing.B) {
	dir := b.TempDir()
	var last *deploy.Outcome
	for i := 0; i < b.N; i++ {
		last = runChurnRollout(b, filepath.Join(dir, fmt.Sprintf("journal-%d", i)))
	}
	b.ReportMetric(float64(last.Integrated()), "integrated/op")
	b.ReportMetric(float64(len(last.Quarantined)), "quarantined/op")
	if _, err := benchjson.WriteEnv("MIRAGE_BENCH_ROLLOUT_JSON", []benchjson.Result{{
		Name: "BenchmarkRolloutChurn", N: churnMachines,
		Metrics: map[string]float64{
			"clusters":    churnClusters,
			"churned":     churnChurned,
			"killed":      churnKilled,
			"integrated":  float64(last.Integrated()),
			"quarantined": float64(len(last.Quarantined)),
			"wire_bytes":  float64(last.Transfer.Bytes),
			"frames":      float64(last.Transfer.Frames),
			"ns_per_op":   float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		},
	}}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimulatorEvents reports the event throughput of the
// discrete-event engine on the paper scenario.
func BenchmarkSimulatorEvents(b *testing.B) {
	p := simulator.DefaultParams()
	events := 0
	for i := 0; i < b.N; i++ {
		res := simulator.FrontLoading(p, scenario.PaperDeployment(scenario.ProblemsLast))
		events += res.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

// --- Control plane (concurrent rollout orchestration) ---

const (
	orchMachines = 40 // one shared fleet of agents over loopback TCP
	orchRollouts = 4  // concurrent journaled rollouts over that fleet
	orchClusters = 4  // clusters per rollout
)

// BenchmarkOrchestratorConcurrent measures the control plane's headline:
// four journaled rollouts running concurrently over one shared 40-agent
// fleet — each with its own journal, event stream and status view — all
// converging. Upgrade IDs differ per rollout, so the journals must never
// cross-contaminate; the assertion fails the benchmark (and CI) if any
// rollout falls short of full integration. Set MIRAGE_BENCH_ORCH_JSON to
// a path to emit the machine-readable summary (the CI perf artifact).
func BenchmarkOrchestratorConcurrent(b *testing.B) {
	dir := b.TempDir()
	var last []orchestrator.Status
	var lastOut []*deploy.Outcome
	for i := 0; i < b.N; i++ {
		last, lastOut = runConcurrentRollouts(b, filepath.Join(dir, fmt.Sprintf("iter-%d", i)))
	}
	integrated := 0
	for _, out := range lastOut {
		integrated += out.Integrated()
	}
	b.ReportMetric(float64(orchRollouts), "rollouts/op")
	b.ReportMetric(float64(integrated), "integrated/op")
	states := make(map[string]string, len(last))
	events := 0
	for _, st := range last {
		states[st.ID] = string(st.State)
		events += st.Events
	}
	if _, err := benchjson.WriteEnv("MIRAGE_BENCH_ORCH_JSON", []benchjson.Result{{
		Name: "BenchmarkOrchestratorConcurrent", N: orchMachines,
		Labels: states,
		Metrics: map[string]float64{
			"rollouts":   orchRollouts,
			"clusters":   orchClusters,
			"integrated": float64(integrated),
			"events":     float64(events),
			"ns_per_op":  float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		},
	}}); err != nil {
		b.Fatal(err)
	}
}

// runConcurrentRollouts spins one vendor server plus a 40-agent fleet and
// drives 4 concurrent journaled rollouts over the same agents through one
// orchestrator. Agents serialize work on their control channel, so the
// rollouts contend exactly like concurrent operators would.
func runConcurrentRollouts(b *testing.B, dir string) ([]orchestrator.Status, []*deploy.Outcome) {
	b.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		b.Fatal(err)
	}
	s, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	names := make([]string, orchMachines)
	for i := range names {
		names[i] = fmt.Sprintf("orch-%02d", i)
		m := machine.New(names[i])
		m.SetEnv("HOME", "/home/user")
		m.WriteFile(&machine.File{Path: apps.MySQLExec, Type: machine.TypeExecutable,
			Data: []byte("mysqld 4.1.22"), Version: "4.1.22"})
		m.InstallPackage(machine.PackageRef{Name: "mysql", Version: "4.1.22"}, []string{apps.MySQLExec})
		go transport.NewAgent(m).Run(s.Addr())
	}
	if got := s.WaitForAgents(orchMachines, 10*time.Second); got != orchMachines {
		b.Fatalf("only %d/%d agents registered", got, orchMachines)
	}

	perCluster := orchMachines / orchClusters
	mkClusters := func() []*deploy.Cluster {
		var clusters []*deploy.Cluster
		for c := 0; c < orchClusters; c++ {
			cl := &deploy.Cluster{ID: deploy.ClusterName(c), Distance: c + 1}
			for n, name := range names[c*perCluster : (c+1)*perCluster] {
				if n == 0 {
					cl.Representatives = append(cl.Representatives, s.Node(name))
				} else {
					cl.Others = append(cl.Others, s.Node(name))
				}
			}
			clusters = append(clusters, cl)
		}
		return clusters
	}

	orch := orchestrator.New(dir)
	handles := make([]*orchestrator.Handle, orchRollouts)
	for r := 0; r < orchRollouts; r++ {
		up := &pkgmgr.Upgrade{
			ID: fmt.Sprintf("mysql-orch-5.0.%d", r),
			Pkg: &pkgmgr.Package{Name: "mysql", Version: "5.0.22", Files: []*machine.File{
				{Path: apps.MySQLExec, Type: machine.TypeExecutable, Data: []byte("mysqld 5.0.22"), Version: "5.0.22"},
			}},
			Replaces: "4.1.22",
		}
		h, err := orch.Start(context.Background(), orchestrator.Spec{
			Policy:   deploy.PolicyBalanced,
			Upgrade:  up,
			Clusters: mkClusters(),
			Configure: func(ctl *deploy.Controller) {
				ctl.Transfer = s.TransferSnapshot
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		handles[r] = h
	}

	outs := make([]*deploy.Outcome, orchRollouts)
	sts := make([]orchestrator.Status, orchRollouts)
	for r, h := range handles {
		out, err := h.Wait(context.Background())
		if err != nil {
			b.Fatalf("rollout %s: %v", h.ID(), err)
		}
		if out.Integrated() != orchMachines {
			b.Fatalf("rollout %s integrated %d/%d", h.ID(), out.Integrated(), orchMachines)
		}
		outs[r] = out
		sts[r] = h.Status()
		if sts[r].State != orchestrator.StateSucceeded {
			b.Fatalf("rollout %s state %s", h.ID(), sts[r].State)
		}
		// Journal hygiene: each rollout's journal names only its upgrade.
		recs, err := rollout.Load(sts[r].Journal)
		if err != nil {
			b.Fatal(err)
		}
		want := fmt.Sprintf("mysql-orch-5.0.%d", r)
		for _, rec := range recs {
			if rec.UpgradeID != "" && rec.UpgradeID != want {
				b.Fatalf("rollout %s journal holds foreign record %+v", h.ID(), rec)
			}
		}
	}
	return sts, outs
}

// --- 100k-agent control plane ---

// scaleUpgrade is the sim fleet's payload: one executable big enough to
// chunk but small enough that transfer cost never dominates — the scale
// bench measures the control plane (registration, scheduling, journal,
// budget), not the distribution tier, which has its own benchmarks.
func scaleUpgrade() *pkgmgr.Upgrade {
	return &pkgmgr.Upgrade{
		ID: "scaled-app-2.0",
		Pkg: &pkgmgr.Package{Name: "scaled-app", Version: "2.0", Files: []*machine.File{
			{Path: "/usr/bin/scaled-app", Type: machine.TypeExecutable,
				Data: distribPayload(0x5c, 64<<10), Version: "2.0"},
		}},
		Replaces: "1.0",
	}
}

// registryThroughput measures mixed register/lookup throughput (ops/sec)
// on a registry pre-populated with every name, across the given worker
// count. One op in 16 is a registration (the steady-state fleet churns
// slowly); the rest are the lookups every RPC performs.
func registryThroughput(names []string, shards, workers, opsPerWorker int) float64 {
	r := transport.NewRegistry[int](shards)
	for i, name := range names {
		r.Put(name, i)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			idx := w * 7919 // stride the shards differently per worker
			for i := 0; i < opsPerWorker; i++ {
				name := names[idx%len(names)]
				idx += 7919
				if i%16 == 0 {
					r.Put(name, i)
				} else {
					r.Get(name)
				}
			}
		}(w)
	}
	wg.Wait()
	return float64(workers*opsPerWorker) / time.Since(start).Seconds()
}

// fdBudgetAllows reports whether the process may hold `need` file
// descriptors, raising the soft limit toward the hard limit first. The
// scale tiers use it to pick their transport: real TCP when the
// descriptor budget covers two sockets per agent, in-process pipes
// (Server.ServeConn — identical protocol, zero descriptors) when not.
func fdBudgetAllows(need uint64) bool {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return false
	}
	if rl.Cur < rl.Max {
		raised := rl
		raised.Cur = rl.Max
		if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &raised); err == nil {
			rl = raised
		}
	}
	return rl.Cur >= need
}

// scaleTier is one fleet-size measurement of the scale benchmark.
type scaleTier struct {
	Members             int     `json:"members"`
	Mode                string  `json:"mode"` // "tcp" or "pipe"
	RegisterSecs        float64 `json:"register_secs"`
	RegistrationsPerSec float64 `json:"registrations_per_sec"`
	RolloutSecs         float64 `json:"rollout_secs"`
	Integrated          int     `json:"integrated"`
	Tested              int64   `json:"tested"`
	Shards              int     `json:"shards"`
}

// runScaleRollout registers an n-agent sim fleet against a fresh vendor
// and drives one journaled Balanced rollout across ~1000-member clusters
// under a 256-slot worker budget, asserting full integration. With reg
// non-nil the full telemetry stack is wired — transport RPC histograms,
// member spans under a live trace, journal fsync metrics — so the
// overhead tier measures exactly what an instrumented control plane
// pays.
func runScaleRollout(b *testing.B, dir string, n, iter int, reg *telemetry.Registry) scaleTier {
	b.Helper()
	mode := "tcp"
	if !fdBudgetAllows(uint64(2*n + 512)) {
		mode = "pipe"
	}
	s, err := transport.ListenWith("127.0.0.1:0", transport.ListenOpts{MaxPending: 4096})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	s.Telemetry = reg

	opts := transport.SimOptions{Prefix: fmt.Sprintf("scale%dk", n/1000)}
	if mode == "pipe" {
		opts.Server = s
	} else {
		opts.Addr = s.Addr()
	}
	t0 := time.Now()
	fleet, err := transport.StartSimFleet(n, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer fleet.Close()
	if got := s.WaitForAgents(n, 5*time.Minute); got != n {
		b.Fatalf("only %d/%d sim agents registered", got, n)
	}
	regSecs := time.Since(t0).Seconds()

	names := fleet.Names()
	per := 1000
	if n < per {
		per = n
	}
	var clusters []*deploy.Cluster
	for c := 0; c*per < n; c++ {
		end := (c + 1) * per
		if end > n {
			end = n
		}
		cl := &deploy.Cluster{ID: deploy.ClusterName(c), Distance: c + 1}
		for i, name := range names[c*per : end] {
			if i == 0 {
				cl.Representatives = append(cl.Representatives, s.Node(name))
			} else {
				cl.Others = append(cl.Others, s.Node(name))
			}
		}
		clusters = append(clusters, cl)
	}

	ctl := deploy.NewController(report.New(), nil)
	ctl.Parallelism = 64
	ctl.Budget = deploy.NewBudget(256)
	ctl.Transfer = s.TransferSnapshot
	ctl.Telemetry = reg
	eng := &rollout.Engine{Controller: ctl, Telemetry: reg,
		Path: filepath.Join(dir, fmt.Sprintf("scale-%d-%d.journal", n, iter))}
	ctx := context.Background()
	if reg != nil {
		tr := (&telemetry.Tracer{}).Start(fmt.Sprintf("scale-%d", n))
		root := tr.Begin(0, "rollout", fmt.Sprintf("scale %d", n), "")
		defer tr.End(root, nil)
		ctx = telemetry.NewContext(ctx, tr, root)
	}
	t1 := time.Now()
	out, err := eng.Deploy(ctx, deploy.PolicyBalanced, scaleUpgrade(), clusters)
	if err != nil {
		b.Fatal(err)
	}
	rolloutSecs := time.Since(t1).Seconds()
	if out.Integrated() != n {
		b.Fatalf("scale tier %d: integrated %d/%d (quarantined %v)", n, out.Integrated(), n, out.Quarantined)
	}
	return scaleTier{
		Members: n, Mode: mode,
		RegisterSecs: regSecs, RegistrationsPerSec: float64(n) / regSecs,
		RolloutSecs: rolloutSecs, Integrated: out.Integrated(),
		Tested: fleet.Tested(), Shards: len(s.ShardSizes()),
	}
}

// BenchmarkScale measures the control plane at fleet sizes the paper's
// testbed could only simulate: registry throughput as shard count grows,
// then full journaled rollouts over sim-agent fleets (10k always; 50k and
// 100k behind MIRAGE_BENCH_SCALE_100K=1). When real parallelism is
// available (GOMAXPROCS >= 8) the sharded registry must beat a single
// shard by at least 4x on the 100k-name working set; on smaller hosts the
// ratio is recorded but not asserted, since shards only relieve lock
// contention that a serial scheduler never creates. Set
// MIRAGE_BENCH_SCALE_JSON to a path to emit the machine-readable summary
// (the CI perf-trajectory artifact).
func BenchmarkScale(b *testing.B) {
	names := make([]string, 100_000)
	for i := range names {
		names[i] = fmt.Sprintf("agent-%06d", i)
	}
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 8 {
		workers = 8
	}
	const opsPerWorker = 100_000
	shardCounts := []int{1, 4, 16}
	if d := transport.DefaultShards(); d > 16 {
		shardCounts = append(shardCounts, d)
	}
	sizes := []int{10_000}
	if os.Getenv("MIRAGE_BENCH_SCALE_100K") != "" {
		sizes = append(sizes, 50_000, 100_000)
	}

	dir := b.TempDir()
	throughput := make([]float64, len(shardCounts))
	var tiers []scaleTier
	for i := 0; i < b.N; i++ {
		for j, sc := range shardCounts {
			throughput[j] = registryThroughput(names, sc, workers, opsPerWorker)
		}
		tiers = tiers[:0]
		for _, n := range sizes {
			tiers = append(tiers, runScaleRollout(b, dir, n, i, nil))
		}
	}
	ratio := throughput[len(throughput)-1] / throughput[0]
	last := tiers[len(tiers)-1]
	b.ReportMetric(ratio, "shard-speedup")
	b.ReportMetric(last.RegistrationsPerSec, "reg/s")
	b.ReportMetric(last.RolloutSecs, "rollout-s")
	if runtime.GOMAXPROCS(0) >= 8 && ratio < 4 {
		b.Fatalf("sharded registry (%d shards) is only %.2fx a single shard over %d names at GOMAXPROCS=%d; want >= 4x",
			shardCounts[len(shardCounts)-1], ratio, len(names), runtime.GOMAXPROCS(0))
	}

	// Telemetry overhead tier: rerun the 10k rollout with the full
	// telemetry stack wired (RPC latency/byte histograms on every agent
	// call, member spans recorded into a live trace, journal fsync
	// metrics) and hold it to 5% of the plain run's wall clock — the
	// half-second floor keeps sub-second runs from tripping on timer
	// noise. Telemetry that costs more than that is not allocation-free
	// enough to leave on in production.
	plain := tiers[0]
	telemTier := runScaleRollout(b, dir, sizes[0], b.N, telemetry.NewRegistry())
	overhead := telemTier.RolloutSecs / plain.RolloutSecs
	b.ReportMetric(overhead, "telemetry-overhead")
	if telemTier.RolloutSecs > plain.RolloutSecs*1.05+0.5 {
		b.Fatalf("telemetry-enabled %dk rollout took %.2fs vs %.2fs plain (%.2fx); want <= 1.05x",
			sizes[0]/1000, telemTier.RolloutSecs, plain.RolloutSecs, overhead)
	}
	b.Logf("telemetry overhead at %d members: %.2fs plain, %.2fs instrumented (%.2fx)",
		sizes[0], plain.RolloutSecs, telemTier.RolloutSecs, overhead)

	gated := 0.0
	if runtime.GOMAXPROCS(0) < 8 {
		gated = 1
	}
	summary := []benchjson.Result{
		{Name: "BenchmarkScale", N: len(names), Metrics: map[string]float64{
			"gomaxprocs": float64(runtime.GOMAXPROCS(0)), "workers": float64(workers),
			"shard_speedup": ratio, "speedup_gated": gated,
			"telemetry_overhead": overhead,
		}},
	}
	for j, sc := range shardCounts {
		summary = append(summary, benchjson.Result{
			Name: "BenchmarkScale/registry", N: sc,
			Metrics: map[string]float64{"ops_per_sec": throughput[j]},
		})
	}
	tierResult := func(name string, t scaleTier) benchjson.Result {
		return benchjson.Result{
			Name: name, N: t.Members, Labels: map[string]string{"mode": t.Mode},
			Metrics: map[string]float64{
				"register_secs": t.RegisterSecs, "registrations_per_sec": t.RegistrationsPerSec,
				"rollout_secs": t.RolloutSecs, "integrated": float64(t.Integrated),
				"tested": float64(t.Tested), "shards": float64(t.Shards),
			},
		}
	}
	for _, t := range tiers {
		summary = append(summary, tierResult(fmt.Sprintf("BenchmarkScale/rollout%dk", t.Members/1000), t))
	}
	summary = append(summary, tierResult(
		fmt.Sprintf("BenchmarkScale/rollout%dk-telemetry", telemTier.Members/1000), telemTier))
	if _, err := benchjson.WriteEnv("MIRAGE_BENCH_SCALE_JSON", summary); err != nil {
		b.Fatal(err)
	}
}
