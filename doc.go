// Package repro is a from-scratch Go reproduction of "Staged Deployment in
// Mirage, an Integrated Software Upgrade Testing and Distribution System"
// (Crameri, Knežević, Kostić, Bianchini, Zwaenepoel; SOSP 2007).
//
// The library lives under internal/: environment fingerprinting
// (internal/fingerprint, internal/parser), the identification heuristic
// (internal/envid), the two-phase clustering algorithm (internal/cluster),
// staged deployment protocols over both an event-driven simulator
// (internal/simulator) and real networked machines (internal/deploy,
// internal/transport), the user-machine testing subsystem
// (internal/vmtest) and the Upgrade Report Repository (internal/report).
// The top-level orchestration API is internal/core; the paper's evaluation
// scenarios are reconstructed in internal/scenario and internal/survey.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; see EXPERIMENTS.md for the comparison against the
// published results.
package repro
