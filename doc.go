// Package repro is a from-scratch Go reproduction of "Staged Deployment in
// Mirage, an Integrated Software Upgrade Testing and Distribution System"
// (Crameri, Knežević, Kostić, Bianchini, Zwaenepoel; SOSP 2007).
//
// The library lives under internal/: environment fingerprinting
// (internal/fingerprint, internal/parser), the identification heuristic
// (internal/envid), the two-phase clustering algorithm (internal/cluster),
// the fleet-profiling pipeline (internal/profile) that collects machine
// profiles concurrently and assembles clusters of deployment for local
// and remote fleets alike, and the unified staging engine
// (internal/staging) that computes one
// wave-schedule Plan per deployment policy and drives it through two
// executors — the event-driven simulator (internal/simulator) and the live
// deployment controller over real networked machines (internal/deploy,
// internal/transport). Upgrade bytes reach machines through the
// content-addressed distribution layer (internal/distrib): chunk
// manifests in place of inline payloads, persistent agent-side chunk
// caches seeded from installed files, and batched fetches of only the
// missing chunks — pushed as binary chunk frames (raw bytes behind a
// JSON header; the -json-chunks flag restores the legacy base64
// encoding) and, once a rollout's early waves gate, served mostly
// peer-to-peer: agents opt in with -peer-listen, the vendor hints gated
// peers that hold the missing addresses, and every peer-fetched chunk
// self-verifies against its content digest before the vendor uplink is
// asked for the remainder. The user-machine testing subsystem is
// internal/vmtest and the Upgrade Report Repository is internal/report.
// Deployments run as first-class rollout lifecycles on the control plane
// (internal/orchestrator): Start(ctx, Spec) returns a Handle with Status
// snapshots, a replayable event stream, Pause/ResumeRun at stage
// barriers, Abort (context cancellation, journaled as abandoned so an
// aborted rollout can never half-resume) and Wait; a context.Context
// threads from the handle through the deployment controller, its retry
// backoff and worker pool, and every transport RPC. The same package
// exposes the lifecycle over HTTP (orchestrator.API, served by
// mirage-vendor, driven by mirage-ctl through orchestrator.Client).
// The control plane holds at 100k agents: the agent registry is sharded
// with single-wakeup waiters (-shards), a vendor-wide worker budget caps
// in-flight member RPCs across all rollouts (-worker-budget), admission
// control bounds concurrent rollouts with a FIFO queue and 429s beyond
// it (-max-rollouts, -max-queued), the deployment journal group-commits
// member records between durable gate syncs, and the admin mux serves
// /healthz, Prometheus /metrics and optional pprof. transport.SimFleet
// (mirage-agent -sim N) runs thousands of protocol-faithful simulated
// agents per process for BenchmarkScale's 10k–100k rollout tiers.
// Fleets stay live after profiling (internal/fleetwatch): agents started
// with -watch re-fingerprint on an interval and push profile deltas, the
// vendor's drift monitor folds each one into the cluster snapshot
// incrementally (cluster.Snapshot.Update) and classifies the machine
// stable, migrated, or drifted; drifted members of gated clusters are
// journaled into every live rollout as RecDrift records and gated by
// orchestrator.DriftPolicy — journal, hold at the next stage barrier, or
// restage against the current fleet view (GET /fleet/drift and POST
// /fleet/refresh expose the versioned view; mirage-ctl drift/refresh
// drive them).
//
// The top-level vendor API is internal/core: ClusterFleet profiles and
// clusters a fleet, StartDeployment launches a rollout handle, and
// StageDeployment is the synchronous wrapper over the same path. The
// paper's evaluation scenarios are reconstructed in internal/scenario
// and internal/survey. ARCHITECTURE.md diagrams the six shared layers.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; see EXPERIMENTS.md for the comparison against the
// published results.
package repro
