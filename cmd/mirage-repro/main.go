// mirage-repro regenerates every table and figure of the paper's
// evaluation in one run and reports whether each matches the published
// result. It is the executable companion to EXPERIMENTS.md.
//
// Usage:
//
//	mirage-repro              # run everything
//	mirage-repro -exp fig7    # one experiment: survey, table1, fig6..fig11
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/logx"
	"repro/internal/scenario"
	"repro/internal/simulator"
	"repro/internal/survey"
)

var failures int

func check(ok bool, format string, args ...any) {
	status := "ok  "
	if !ok {
		status = "FAIL"
		failures++
	}
	fmt.Printf("  [%s] %s\n", status, fmt.Sprintf(format, args...))
}

func main() {
	exp := flag.String("exp", "all", "experiment: survey, table1, fig6, fig7, fig8, fig9, fig10, fig11 or all")
	logOpts := logx.Flags(flag.CommandLine)
	flag.Parse()
	if _, err := logOpts.Setup(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }

	if run("survey") {
		runSurvey()
	}
	if run("table1") {
		runTable1()
	}
	if run("fig6") {
		runFig6()
	}
	if run("fig7") {
		runFig7()
	}
	if run("fig8") {
		runFig8()
	}
	if run("fig9") {
		runFig9()
	}
	if run("fig10") {
		runFig10()
	}
	if run("fig11") {
		runFig11()
	}

	if failures > 0 {
		fmt.Printf("\n%d experiment check(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall experiment checks passed")
}

func runSurvey() {
	fmt.Println("== Figures 1-3: upgrade survey ==")
	ds := survey.Load()
	check(len(ds.Respondents) == 50, "50 respondents")
	check(ds.Pct(func(r survey.Respondent) bool { return r.Frequency.AtLeastMonthly() }) == 90,
		"90%% upgrade at least monthly (Figure 1)")
	check(ds.Pct(func(r survey.Respondent) bool { return r.Refrains }) == 70,
		"70%% refrain from installing upgrades (Figure 2)")
	fig3 := ds.Figure3()
	check(fig3[5]+fig3[10] == 33, "66%% perceive a 5-10%% failure rate (Figure 3)")
	check(ds.MedianFailureRate() == 5, "median perceived failure rate 5%%")
	mean := ds.MeanFailureRate()
	check(mean > 8.4 && mean < 8.8, "mean perceived failure rate %.2f%% (paper: 8.6%%)", mean)
}

func runTable1() {
	fmt.Println("== Table 1: environmental-resource identification ==")
	want := map[string][5]int{
		"firefox": {907, 839, 1, 23, 7},
		"apache":  {400, 251, 133, 0, 2},
		"php":     {215, 206, 0, 0, 0},
		"mysql":   {286, 250, 0, 33, 1},
	}
	for _, p := range scenario.Table1Populations() {
		row, ruled := scenario.EvaluateTable1(p)
		w := want[p.App]
		got := [5]int{row.FilesTotal, row.EnvResources, row.FalsePositives, row.FalseNegatives, row.VendorRules}
		check(got == w, "%s", row)
		check(ruled.FalsePositives == 0 && ruled.FalseNegatives == 0,
			"%s: perfect classification with %d vendor rule(s)", p.App, row.VendorRules)
	}
}

func runFig6() {
	fmt.Println("== Figure 6: MySQL clustering, full parsers ==")
	clusters := cluster.Run(cluster.Config{Diameter: 3}, scenario.MySQLFingerprints(scenario.MySQLFullRegistry()))
	q := cluster.Evaluate(clusters, scenario.MySQLBehavior())
	check(q.Sound(), "sound clustering (w=%d)", q.W)
	check(q.Clusters == 15, "15 clusters over 21 machines (got %d)", q.Clusters)
	check(q.C == 12, "C = 12 (got %d)", q.C)
}

func runFig7() {
	fmt.Println("== Figure 7: MySQL clustering, Mirage parsers only, d=3 ==")
	clusters := cluster.Run(cluster.Config{Diameter: 3}, scenario.MySQLFingerprints(scenario.MySQLMirageRegistry()))
	q := cluster.Evaluate(clusters, scenario.MySQLBehavior())
	check(q.W == 2, "imperfect clustering, w = 2 (got %d: %v)", q.W, q.Misplaced)
}

func runFig8() {
	fmt.Println("== Figure 8: Firefox clustering, full parsers ==")
	clusters := cluster.Run(cluster.Config{Diameter: 3}, scenario.FirefoxFingerprints(scenario.FirefoxFullRegistry()))
	q := cluster.Evaluate(clusters, scenario.FirefoxBehavior())
	check(q.Sound() && q.C == 2 && q.Clusters == 4, "sound, 4 clusters, C=2 (got %d clusters, C=%d, w=%d)",
		q.Clusters, q.C, q.W)
}

func runFig9() {
	fmt.Println("== Figure 9: Firefox clustering, Mirage parsers only ==")
	left := cluster.Run(cluster.Config{Diameter: 4}, scenario.FirefoxFingerprints(scenario.FirefoxMirageRegistry()))
	ql := cluster.Evaluate(left, scenario.FirefoxBehavior())
	check(ql.Ideal() && ql.Clusters == 2, "d=4: ideal, 2 clusters (got %d, C=%d, w=%d)", ql.Clusters, ql.C, ql.W)
	right := cluster.Run(cluster.Config{Diameter: 6}, scenario.FirefoxFingerprints(scenario.FirefoxMirageRegistry()))
	qr := cluster.Evaluate(right, scenario.FirefoxBehavior())
	check(qr.W == 3, "d=6: imperfect, w = 3 (got %d)", qr.W)
}

func runFig10() {
	fmt.Println("== Figure 10: deployment latency CDF, sound clustering ==")
	p := simulator.DefaultParams()
	ns := simulator.NoStaging(p, scenario.PaperDeployment(scenario.ProblemsLast))
	bb := simulator.Balanced(p, scenario.PaperDeployment(scenario.ProblemsLast))
	bw := simulator.Balanced(p, scenario.PaperDeployment(scenario.ProblemsFirst))
	rs := simulator.RandomStaging(p, scenario.PaperDeployment(scenario.ProblemsUniform), 42)
	fl := simulator.FrontLoading(p, scenario.PaperDeployment(scenario.ProblemsLast))

	check(ns.Overhead == 25000, "NoStaging overhead = m = 25000 (got %d)", ns.Overhead)
	check(bb.Overhead == 3 && bw.Overhead == 3 && rs.Overhead == 3,
		"Balanced/RandomStaging overhead = p = 3 (got %d/%d/%d)", bb.Overhead, bw.Overhead, rs.Overhead)
	check(fl.Overhead == 5, "FrontLoading overhead = p + Cp = 5 (got %d)", fl.Overhead)
	check(ns.FractionByTime(15) == 0.75, "NoStaging: 75%% of clusters pass at t=15 (got %.2f)", ns.FractionByTime(15))
	check(bb.FractionByTime(1000) >= 0.5, "Balanced(best) upgrades a large fraction early (%.2f at t=1000)",
		bb.FractionByTime(1000))
	check(fl.FractionByTime(1500) == 0, "FrontLoading delayed by debug cycles (%.2f at t=1500)",
		fl.FractionByTime(1500))
	check(fl.Makespan < bb.Makespan && fl.Makespan < bw.Makespan,
		"FrontLoading finishes the last cluster first (%.0f vs %.0f/%.0f)", fl.Makespan, bb.Makespan, bw.Makespan)
}

func runFig11() {
	fmt.Println("== Figure 11: deployment latency CDF, imperfect clustering ==")
	p := simulator.DefaultParams()
	sound := simulator.Balanced(p, scenario.PaperDeployment(scenario.ProblemsLast))
	first := simulator.Balanced(p, scenario.WithMisplaced(scenario.PaperDeployment(scenario.ProblemsLast), true))
	last := simulator.Balanced(p, scenario.WithMisplaced(scenario.PaperDeployment(scenario.ProblemsLast), false))
	nsS := simulator.NoStaging(p, scenario.PaperDeployment(scenario.ProblemsLast))
	nsI := simulator.NoStaging(p, scenario.WithMisplaced(scenario.PaperDeployment(scenario.ProblemsLast), true))

	check(first.Overhead == sound.Overhead+1, "overhead grows by exactly one machine (got %d vs %d)",
		first.Overhead, sound.Overhead)
	medS, medF, medL := median(sound), median(first), median(last)
	check(medF > medS+p.FixTime/2, "misplaced in first cluster delays the median (%.0f vs %.0f)", medF, medS)
	check(medL <= medS+p.FixTime/2, "misplaced in last cluster barely matters (%.0f vs %.0f)", medL, medS)
	check(nsI.Overhead == nsS.Overhead+1, "NoStaging only one machine worse (%d vs %d)", nsI.Overhead, nsS.Overhead)
}

func median(r *simulator.Result) float64 {
	cdf := r.CDF()
	return cdf[len(cdf)/2].Time
}
