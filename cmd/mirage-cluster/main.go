// mirage-cluster runs the clustering experiments of paper §4.2 (Figures
// 6-9) on the reconstructed Table 2 (MySQL) and Table 3 (Firefox) machine
// populations and prints the clusters with their quality metrics C and w.
//
// Usage:
//
//	mirage-cluster -experiment mysql  -parsers full            # Figure 6
//	mirage-cluster -experiment mysql  -parsers mirage -d 3     # Figure 7
//	mirage-cluster -experiment firefox -parsers full           # Figure 8
//	mirage-cluster -experiment firefox -parsers mirage -d 4    # Figure 9 (left)
//	mirage-cluster -experiment firefox -parsers mirage -d 6    # Figure 9 (right)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/logx"
	"repro/internal/scenario"
	"repro/internal/staging"
)

func main() {
	experiment := flag.String("experiment", "mysql", "experiment: mysql or firefox")
	parsers := flag.String("parsers", "full", "parser coverage: full (vendor parsers) or mirage (Mirage-supplied only)")
	diameter := flag.Int("d", 3, "QT diameter for content-fingerprinted resources")
	discard := flag.String("discard", "", "comma-separated item-key prefixes the vendor discards")
	naiveQT := flag.Bool("naive-qt", false, "run phase 2 over raw machines instead of weighted distinct profiles (reference path, for timing comparisons)")
	plan := flag.String("plan", "", "also print the staged wave schedule the clusters would deploy under: balanced, frontloading, nostaging, random or adaptive")
	logOpts := logx.Flags(flag.CommandLine)
	flag.Parse()
	if _, err := logOpts.Setup(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var fps []cluster.MachineFingerprint
	var behavior cluster.Behavior
	switch *experiment {
	case "mysql":
		behavior = scenario.MySQLBehavior()
		if *parsers == "full" {
			fps = scenario.MySQLFingerprints(scenario.MySQLFullRegistry())
		} else {
			fps = scenario.MySQLFingerprints(scenario.MySQLMirageRegistry())
		}
	case "firefox":
		behavior = scenario.FirefoxBehavior()
		if *parsers == "full" {
			fps = scenario.FirefoxFingerprints(scenario.FirefoxFullRegistry())
		} else {
			fps = scenario.FirefoxFingerprints(scenario.FirefoxMirageRegistry())
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}

	cfg := cluster.Config{Diameter: *diameter, NaiveQT: *naiveQT}
	if *discard != "" {
		cfg.DiscardPrefixes = strings.Split(*discard, ",")
	}
	clusters := cluster.Run(cfg, fps)
	q := cluster.Evaluate(clusters, behavior)

	fmt.Printf("experiment=%s parsers=%s diameter=%d\n", *experiment, *parsers, *diameter)
	fmt.Printf("clusters=%d problems=%d C=%d w=%d", q.Clusters, q.Problems, q.C, q.W)
	switch {
	case q.Ideal():
		fmt.Println("  (ideal clustering)")
	case q.Sound():
		fmt.Println("  (sound clustering)")
	default:
		fmt.Printf("  (imperfect; misplaced: %s)\n", strings.Join(q.Misplaced, ", "))
	}
	fmt.Println()
	fmt.Print(scenario.FormatClusters(clusters, behavior))

	if *plan != "" {
		policy, ok := staging.ParsePolicy(*plan)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown policy %q\n", *plan)
			os.Exit(2)
		}
		// The clustering result feeds the same planner both executors use:
		// this is the schedule a deployment of these clusters would follow.
		// Seed 0 matches deploy.NewController's default, so the preview is
		// exactly what an unseeded live deployment would run.
		refs := make([]staging.ClusterRef, len(clusters))
		for i, c := range clusters {
			refs[i] = staging.ClusterRef{Name: deploy.ClusterName(c.ID), Distance: c.Distance}
		}
		fmt.Println()
		fmt.Print(staging.BuildPlan(policy, refs, 0).Describe())
	}
}
