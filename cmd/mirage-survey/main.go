// mirage-survey regenerates the figures of the paper's upgrade survey
// (§2): upgrade frequency by experience (Figure 1), reluctance versus
// testing strategy (Figure 2) and the perceived failure-rate histogram
// (Figure 3), plus the rank tables reported in prose.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/logx"
	"repro/internal/survey"
)

func main() {
	figure := flag.String("figure", "all", "figure to print: 1, 2, 3, ranks or all")
	logOpts := logx.Flags(flag.CommandLine)
	flag.Parse()
	if _, err := logOpts.Setup(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ds := survey.Load()
	show := func(f string) bool { return *figure == "all" || *figure == f }

	if show("1") {
		fmt.Println("Figure 1: upgrade frequencies by administrator experience (years)")
		fmt.Print(ds.RenderFigure1())
		fmt.Printf("at least monthly: %.0f%%\n\n", ds.Pct(func(r survey.Respondent) bool {
			return r.Frequency.AtLeastMonthly()
		}))
	}
	if show("2") {
		fmt.Println("Figure 2: reluctance to upgrade")
		fmt.Print(ds.RenderFigure2())
		fmt.Println()
	}
	if show("3") {
		fmt.Println("Figure 3: perceived upgrade failure rate")
		fmt.Print(ds.RenderFigure3())
		fmt.Println()
	}
	if show("ranks") {
		fmt.Println("Average rank, reasons for upgrades (1 = most important):")
		reasons := ds.AvgReasonRank()
		for r := survey.ReasonSecurity; r <= survey.ReasonNewFeature; r++ {
			fmt.Printf("  %-16s %.1f\n", r, reasons[r])
		}
		fmt.Println("Average rank, causes of failed upgrades:")
		causes := ds.AvgCauseRank()
		for c := survey.CauseBrokenDependency; c <= survey.CauseImproperPackaging; c++ {
			fmt.Printf("  %-22s %.1f\n", c, causes[c])
		}
	}
}
