// mirage-urr inspects a saved Upgrade Report Repository: summarize an
// upgrade's results, list failures grouped by failure mode, and
// materialize a report image into a textual machine description for
// vendor-side debugging.
//
// Usage:
//
//	mirage-urr -file urr.json summary <upgrade-id>
//	mirage-urr -file urr.json failures <upgrade-id>
//	mirage-urr -file urr.json image <report-id>
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/logx"
	"repro/internal/report"
)

func main() {
	file := flag.String("file", "urr.json", "saved URR document")
	logOpts := logx.Flags(flag.CommandLine)
	flag.Parse()
	if _, err := logOpts.Setup(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}

	f, err := os.Open(*file)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	urr, err := report.LoadURR(f)
	if err != nil {
		fatal(err)
	}

	switch args[0] {
	case "summary":
		requireArg(args, 2)
		s, fails := urr.Summary(args[1])
		fmt.Printf("upgrade %s: %d success, %d failure (of %d reports total)\n",
			args[1], s, fails, urr.Len())
	case "failures":
		requireArg(args, 2)
		for _, g := range urr.GroupFailures(args[1]) {
			fmt.Printf("failure mode: %s\n", g.Signature)
			fmt.Printf("  reports: %d across clusters %v\n", len(g.Reports), g.Clusters)
			fmt.Printf("  representative: report #%d from %s\n", g.Representative.ID, g.Representative.Machine)
			for i, reason := range g.Representative.Reasons {
				fmt.Printf("  reason[%d]: %s\n", i, reason)
			}
		}
	case "image":
		requireArg(args, 2)
		id, err := strconv.Atoi(args[1])
		if err != nil {
			fatal(fmt.Errorf("bad report id %q", args[1]))
		}
		r := urr.Get(id)
		if r == nil {
			fatal(fmt.Errorf("no report %d", id))
		}
		if r.Image == nil {
			fatal(fmt.Errorf("report %d has no image (successful reports omit them)", id))
		}
		m := r.Image.Materialize()
		fmt.Printf("machine %s (%d files, %d packages)\n", m.Name, len(m.Paths()), len(m.Packages()))
		for _, ref := range m.Packages() {
			fmt.Printf("  package %s\n", ref)
		}
		for _, p := range m.Paths() {
			f := m.ReadFile(p)
			ver := f.Version
			if ver == "" {
				ver = "-"
			}
			fmt.Printf("  %-50s %-10s %8d bytes  v%s\n", p, f.Type, len(f.Data), ver)
		}
	default:
		usage()
	}
}

func requireArg(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mirage-urr -file urr.json {summary|failures|image} <arg>")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mirage-urr:", err)
	os.Exit(1)
}
