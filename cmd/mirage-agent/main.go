// mirage-agent runs the user-machine side of a networked Mirage
// deployment: it builds one of the Table 2 machine configurations, dials
// the vendor and serves identification, tracing, fingerprinting,
// validation and integration commands until the vendor disconnects.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"repro/internal/logx"
	"repro/internal/scenario"
	"repro/internal/transport"
)

func fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

func main() {
	connect := flag.String("connect", "127.0.0.1:7033", "vendor address")
	machineName := flag.String("machine", "ubt-ms4", "Table 2 machine configuration to impersonate (or 'list')")
	seedCache := flag.Bool("seed-cache", true, "prime the chunk cache from installed files, so version upgrades transfer only changed chunks")
	reconnect := flag.Bool("reconnect", true, "redial the vendor with backoff when the control channel drops, preserving identity and chunk cache; the agent exits once redials stop succeeding")
	reconnectAttempts := flag.Int("reconnect-attempts", 5, "consecutive failed redials before concluding the vendor is gone")
	peerListen := flag.String("peer-listen", "", "address to serve the chunk cache to peer agents on (e.g. 127.0.0.1:0; empty = peer serving disabled); the bound address is advertised to the vendor, which hints this agent to later waves once its wave gates")
	watch := flag.Duration("watch", 0, "re-fingerprint this machine at the given interval and push profile deltas to the vendor, so the control plane sees live drift (0 = disabled); an unchanged machine pushes nothing")
	sim := flag.Int("sim", 0, "scale harness: instead of one full agent, run this many protocol-faithful simulated agents (canned validation, shared chunk cache) against the vendor — thousands per process")
	simPrefix := flag.String("sim-prefix", "sim", "machine-name prefix for -sim agents (names are <prefix>-000000 ...)")
	logOpts := logx.Flags(flag.CommandLine)
	flag.Parse()
	if _, err := logOpts.Setup(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *sim > 0 {
		fleet, err := transport.StartSimFleet(*sim, transport.SimOptions{
			Addr: *connect, Prefix: *simPrefix,
		})
		if err != nil {
			fatal("sim fleet failed to connect", "err", err)
		}
		slog.Info("sim fleet connected", "agents", *sim, "vendor", *connect, "prefix", *simPrefix)
		fleet.Wait()
		slog.Info("sim fleet done: vendor closed",
			"validations", fleet.Tested(), "integrations", fleet.Integrated())
		return
	}

	specs := scenario.MySQLTable2()
	if *machineName == "list" {
		var names []string
		for _, s := range specs {
			names = append(names, s.Name)
		}
		fmt.Println(strings.Join(names, "\n"))
		return
	}

	var found *scenario.MySQLMachineSpec
	for i := range specs {
		if specs[i].Name == *machineName {
			found = &specs[i]
			break
		}
	}
	if found == nil {
		fmt.Fprintf(os.Stderr, "unknown machine %q (use -machine list)\n", *machineName)
		os.Exit(2)
	}

	m := scenario.BuildMySQLMachine(*found)
	agent := transport.NewAgent(m)
	agent.SeedCache = *seedCache
	if *peerListen != "" {
		addr, err := agent.ServePeers(*peerListen)
		if err != nil {
			fatal("peer serving failed", "agent", m.Name, "err", err)
		}
		defer agent.ClosePeers()
		slog.Info("serving peer chunks", "agent", m.Name, "addr", addr)
	}
	if *watch > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go agent.Watch(*connect, *watch, stop)
		slog.Info("watching for drift", "agent", m.Name, "interval", *watch)
	}
	slog.Info("connecting to vendor", "agent", m.Name, "vendor", *connect)
	var err error
	if *reconnect {
		err = agent.RunWithReconnect(*connect, transport.ReconnectConfig{MaxAttempts: *reconnectAttempts})
	} else {
		err = agent.Run(*connect)
	}
	if err != nil {
		fatal("agent run failed", "agent", m.Name, "err", err)
	}
	ref, _ := m.Package("mysql")
	slog.Info("vendor closed the channel", "agent", m.Name, "mysql_version", ref.Version)
	cs := agent.Cache.Stats()
	slog.Info("chunk cache", "agent", m.Name,
		"chunks", cs.Chunks, "bytes", cs.Bytes, "hits", cs.Hits, "misses", cs.Misses)
	if *peerListen != "" {
		ps := agent.PeerStats()
		slog.Info("peer serving", "agent", m.Name,
			"requests", ps.Requests, "chunks", ps.Chunks, "bytes", ps.Bytes)
	}
}
