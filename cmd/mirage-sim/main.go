// mirage-sim runs the event-driven deployment simulator of paper §4.3 and
// prints the per-cluster latency CDFs and upgrade overheads behind
// Figures 10 and 11.
//
// Usage:
//
//	mirage-sim [-machines 100000] [-clusters 20] [-prevalent 15]
//	           [-clustering sound|imperfect] [-misplaced first|last]
//	           [-seed 42] [-plan balanced|frontloading|nostaging|random|adaptive]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/logx"
	"repro/internal/scenario"
	"repro/internal/simulator"
	"repro/internal/staging"
)

func main() {
	machines := flag.Int("machines", scenario.PaperMachines, "total simulated machines")
	clusters := flag.Int("clusters", scenario.PaperClusters, "number of clusters")
	prevalent := flag.Int("prevalent", scenario.PaperPrevalentPct, "percent of machines hit by the prevalent problem")
	clustering := flag.String("clustering", "sound", "clustering quality: sound or imperfect")
	misplaced := flag.String("misplaced", "first", "imperfect clustering: misplaced machine in first or last clean cluster")
	seed := flag.Uint64("seed", 42, "RandomStaging shuffle seed")
	plan := flag.String("plan", "", "print the staged wave schedule for this policy and exit")
	logOpts := logx.Flags(flag.CommandLine)
	flag.Parse()
	if _, err := logOpts.Setup(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	p := simulator.DefaultParams()
	build := func(placement scenario.Placement) []simulator.ClusterSpec {
		specs := scenario.Deployment(*machines, *clusters, *prevalent, placement)
		if *clustering == "imperfect" {
			specs = scenario.WithMisplaced(specs, *misplaced == "first")
		}
		return specs
	}

	if *plan != "" {
		policy, ok := staging.ParsePolicy(*plan)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown policy %q\n", *plan)
			os.Exit(2)
		}
		fmt.Print(scenario.DeploymentPlan(policy, build(scenario.ProblemsLast), *seed).Describe())
		return
	}

	results := []*simulator.Result{
		simulator.NoStaging(p, build(scenario.ProblemsLast)),
		simulator.Balanced(p, build(scenario.ProblemsLast)),
		simulator.RandomStaging(p, build(scenario.ProblemsUniform), *seed),
		simulator.FrontLoading(p, build(scenario.ProblemsLast)),
		simulator.Adaptive(p, build(scenario.ProblemsLast)),
	}
	worst := simulator.Balanced(p, build(scenario.ProblemsFirst))
	worst.Protocol = "Balanced(worst)"
	results[1].Protocol = "Balanced(best)"
	results = append(results[:2], append([]*simulator.Result{worst}, results[2:]...)...)

	fmt.Printf("scenario: %d machines, %d clusters, %d%% prevalent, %s clustering\n\n",
		*machines, *clusters, *prevalent, *clustering)
	fmt.Printf("%-18s %10s %10s %8s %8s\n", "protocol", "makespan", "overhead", "reports", "fixes")
	for _, r := range results {
		fmt.Printf("%-18s %10.0f %10d %8d %8d\n", r.Protocol, r.Makespan, r.Overhead, r.Reports, r.Fixes)
	}

	fmt.Println("\nper-cluster latency CDF (time: fraction of clusters upgraded)")
	for _, r := range results {
		fmt.Printf("\n%s:\n", r.Protocol)
		for _, pt := range r.CDF() {
			fmt.Printf("  t=%7.0f  %5.2f\n", pt.Time, pt.Fraction)
		}
	}
	os.Exit(0)
}
