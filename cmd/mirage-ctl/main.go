// mirage-ctl is the operator's handle on a running mirage-vendor control
// plane: it starts, lists, watches, pauses, resumes, aborts and waits for
// rollouts over the HTTP admin API.
//
//	mirage-ctl [-server http://127.0.0.1:7080] <command> [args]
//
//	start [-policy NAME] [-resume] [-journal FILE]
//	      [-auto-rollback] [-gate-baseline R -gate-excess R -gate-min-samples N]
//	      [-drift-max N -drift-action journal|hold|restage]
//	                                                 start a rollout
//	list                                             all rollouts
//	status <id>                                      one rollout's snapshot
//	events <id> [-follow]                            event log (long-poll)
//	pause <id>                                       hold at next stage barrier
//	resume <id>                                      release the barrier
//	abort <id>                                       cancel (journals abandoned)
//	rollback <id>                                    drive an abandoned rollout's
//	                                                 members back to the baseline
//	wait <id>                                        block until terminal
//	drift                                            live fleet view and drifted members
//	refresh                                          full fleet re-fingerprint
//
// Exit codes mirror mirage-vendor: 0 success, 1 transport/usage trouble,
// 3 the awaited rollout ended in any state but succeeded.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/fleetwatch"
	"repro/internal/logx"
	"repro/internal/orchestrator"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:7080", "control plane base URL")
	flag.Usage = usage
	logOpts := logx.Flags(flag.CommandLine)
	flag.Parse()
	if _, err := logOpts.Setup(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	c := &orchestrator.Client{Base: *server}
	ctx := context.Background()

	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "start":
		err = start(ctx, c, rest)
	case "list":
		err = list(ctx, c)
	case "status":
		err = withID(rest, func(id string) error {
			st, e := c.Get(ctx, id)
			if e != nil {
				return e
			}
			printStatus(st)
			return nil
		})
	case "events":
		err = events(ctx, c, rest)
	case "pause":
		err = verb(ctx, c.Pause, rest)
	case "resume":
		err = verb(ctx, c.Resume, rest)
	case "abort":
		err = verb(ctx, c.Abort, rest)
	case "rollback":
		err = verb(ctx, c.Rollback, rest)
	case "drift":
		err = fleetView(ctx, c.FleetDrift)
	case "refresh":
		err = fleetView(ctx, c.FleetRefresh)
	case "wait":
		err = withID(rest, func(id string) error {
			st, e := c.Wait(ctx, id, 30*time.Second)
			if e != nil {
				return e
			}
			printStatus(st)
			if st.State != orchestrator.StateSucceeded {
				os.Exit(3)
			}
			return nil
		})
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: mirage-ctl [-server URL] start|list|status|events|pause|resume|abort|rollback|wait|drift|refresh [args]\n")
}

func withID(args []string, f func(string) error) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one rollout id, got %v", args)
	}
	return f(args[0])
}

func verb(ctx context.Context, do func(context.Context, string) (orchestrator.Status, error), args []string) error {
	return withID(args, func(id string) error {
		st, err := do(ctx, id)
		if err != nil {
			return err
		}
		printStatus(st)
		return nil
	})
}

func start(ctx context.Context, c *orchestrator.Client, args []string) error {
	fs := flag.NewFlagSet("start", flag.ContinueOnError)
	policy := fs.String("policy", "", "deployment policy (server default if empty)")
	resume := fs.Bool("resume", false, "resume the journal instead of starting fresh")
	journal := fs.String("journal", "", "journal file override")
	autoRollback := fs.Bool("auto-rollback", false, "roll the fleet back to the baseline if the upgrade is abandoned")
	gateBaseline := fs.Float64("gate-baseline", 0, "canary gate: expected baseline failure rate")
	gateExcess := fs.Float64("gate-excess", 0, "canary gate: tolerated excess failure rate")
	gateMinSamples := fs.Int("gate-min-samples", 0, "canary gate: minimum verdicts before deciding (0 = server default gating)")
	driftMax := fs.Int("drift-max", 0, "drifted members a cluster tolerates before the drift action fires")
	driftAction := fs.String("drift-action", "", "what exceeding -drift-max does: journal, hold or restage (empty = journal)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := c.Start(ctx, orchestrator.StartRequest{
		Policy: *policy, Resume: *resume, Journal: *journal,
		AutoRollback: *autoRollback, GateBaseline: *gateBaseline,
		GateMaxExcess: *gateExcess, GateMinSamples: *gateMinSamples,
		DriftMax: *driftMax, DriftAction: *driftAction,
	})
	if err != nil {
		return err
	}
	printStatus(st)
	return nil
}

func list(ctx context.Context, c *orchestrator.Client) error {
	sts, err := c.List(ctx)
	if err != nil {
		return err
	}
	if len(sts) == 0 {
		fmt.Println("no rollouts")
		return nil
	}
	for _, st := range sts {
		fmt.Printf("%-6s %-10s policy=%-13s stage=%d/%d integrated=%d/%d rounds=%d upgrade=%s\n",
			st.ID, st.State, st.Policy, st.Stage+1, st.Stages, st.Integrated, len(st.Members), st.Rounds, st.UpgradeID)
	}
	return nil
}

func events(ctx context.Context, c *orchestrator.Client, args []string) error {
	fs := flag.NewFlagSet("events", flag.ContinueOnError)
	follow := fs.Bool("follow", false, "keep long-polling until the rollout is terminal")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return withID(fs.Args(), func(id string) error {
		since := 0
		for {
			page, err := c.Events(ctx, id, since, 30*time.Second)
			if err != nil {
				return err
			}
			for _, ev := range page.Events {
				line := fmt.Sprintf("%4d %-12s stage=%d", ev.Seq, ev.Type, ev.Stage)
				if ev.Node != "" {
					line += " node=" + ev.Node
				}
				if ev.UpgradeID != "" {
					line += " upgrade=" + ev.UpgradeID
				}
				if ev.Type == "tested" {
					line += fmt.Sprintf(" success=%v", ev.Success)
				}
				if ev.Reason != "" {
					line += " reason=" + ev.Reason
				}
				fmt.Println(line)
			}
			since = page.Next
			if page.Done || !*follow {
				return nil
			}
		}
	})
}

// fleetView fetches and prints the control plane's fleet view — the live
// one (drift) or a freshly re-fingerprinted one (refresh).
func fleetView(ctx context.Context, fetch func(context.Context) (json.RawMessage, error)) error {
	raw, err := fetch(ctx)
	if err != nil {
		return err
	}
	var v fleetwatch.FleetView
	if err := json.Unmarshal(raw, &v); err != nil {
		return fmt.Errorf("decoding fleet view: %w", err)
	}
	fmt.Printf("fleet view v%d: %d machines in %d clusters, %d drifted\n",
		v.Version, v.Machines, len(v.Clusters), len(v.Drifted))
	for _, c := range v.Clusters {
		line := fmt.Sprintf("  %-10s distance=%-3d members=%d", c.Name, c.Distance, len(c.Machines))
		if c.Gated {
			line += " [gated]"
		}
		fmt.Println(line)
	}
	for _, m := range v.Drifted {
		fmt.Printf("  drifted: %s\n", m)
	}
	return nil
}

func printStatus(st orchestrator.Status) {
	fmt.Printf("rollout %s: %s\n", st.ID, st.State)
	fmt.Printf("  policy=%s stage=%d/%d gates=%d rounds=%d upgrade=%s", st.Policy, st.Stage+1, st.Stages, st.GatesPassed, st.Rounds, st.UpgradeID)
	if st.FinalID != "" {
		fmt.Printf(" final=%s", st.FinalID)
	}
	fmt.Println()
	fmt.Printf("  tested=%d failures=%d integrated=%d/%d quarantined=%d events=%d\n",
		st.Tested, st.Failures, st.Integrated, len(st.Members), st.Quarantined, st.Events)
	if st.Baseline != "" {
		fmt.Printf("  rolled_back=%d baseline=%s\n", st.RolledBack, st.Baseline)
	}
	if st.Drifted > 0 || st.DriftHold != "" {
		fmt.Printf("  drifted=%d", st.Drifted)
		if st.DriftHold != "" {
			fmt.Printf(" drift_hold=%q", st.DriftHold)
		}
		if st.RestagedAs != "" {
			fmt.Printf(" restaged_as=%s", st.RestagedAs)
		}
		fmt.Println()
	}
	if st.Transfer != nil {
		fmt.Printf("  transfer bytes=%d chunk_bytes=%d chunk_hits=%d chunk_misses=%d peer_bytes=%d peer_hits=%d vendor_fallbacks=%d rollback_chunks=%d faults_injected=%d\n",
			st.Transfer.Bytes, st.Transfer.ChunkBytes, st.Transfer.ChunkHits,
			st.Transfer.ChunkMisses, st.Transfer.PeerBytes, st.Transfer.PeerHits,
			st.Transfer.VendorFallbacks, st.Transfer.ChunksRolledBack, st.Transfer.FaultsInjected)
	}
	if st.Journal != "" {
		fmt.Printf("  journal=%s\n", st.Journal)
	}
	if st.Error != "" {
		fmt.Printf("  error=%s\n", st.Error)
	}
}
