// mirage-vendor runs the vendor side of a networked Mirage deployment: it
// listens for machine agents, drives local resource identification and
// baseline tracing on each, fingerprints and clusters the fleet, and then
// deploys the MySQL 4->5 upgrade across the clusters through the rollout
// orchestrator, debugging reported failures by releasing a corrected
// upgrade.
//
// Two modes share all of that machinery:
//
//   - One-shot (default): start a single rollout, wait for it, print the
//     outcome, exit. The rollout is a first-class orchestrator rollout —
//     its ID is printed so an operator can drive it with mirage-ctl while
//     it runs (pause, abort, watch events) via -admin.
//   - Serve (-serve): expose the HTTP control plane and wait. Rollouts
//     are started, observed, paused, resumed and aborted through
//     mirage-ctl (or plain HTTP); each gets its own journal under
//     -journal-dir. The process runs until interrupted.
//
// Exit codes: 0 — deployment succeeded; 1 — infrastructure error (listen
// failure, agent loss, journal I/O); 2 — usage; 3 — the rollout itself
// failed (the vendor abandoned the upgrade, the gate never converged, or
// the rollout was aborted). The distinction is what lets a wrapping
// script tell "the upgrade is bad" from "the tooling broke".
//
// Pair with mirage-agent:
//
//	mirage-vendor -listen 127.0.0.1:7033 -agents 4 -serve &
//	mirage-agent -connect 127.0.0.1:7033 -machine ubt-ms4 &
//	...
//	mirage-ctl -server http://127.0.0.1:7080 start -policy balanced
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/fleetwatch"
	"repro/internal/logx"
	"repro/internal/machine"
	"repro/internal/orchestrator"
	"repro/internal/parser"
	"repro/internal/pkgmgr"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/staging"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

const (
	exitInfra   = 1
	exitUsage   = 2
	exitRollout = 3
)

// fatal logs an infrastructure error and exits with the infra code.
func fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(exitInfra)
}

// Flag defaults overridable by environment variables, so a container
// image can bake operational defaults (MIRAGE_ADMIN_ADDR, …) without
// rewriting the command line; an explicit flag still wins.
func envStr(key, def string) string {
	if v, ok := os.LookupEnv(key); ok {
		return v
	}
	return def
}

func envInt(key string, def int) int {
	if v, ok := os.LookupEnv(key); ok {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
		slog.Warn("ignoring unparsable env override", "var", key, "value", v)
	}
	return def
}

func envBool(key string, def bool) bool {
	if v, ok := os.LookupEnv(key); ok {
		if b, err := strconv.ParseBool(v); err == nil {
			return b
		}
		slog.Warn("ignoring unparsable env override", "var", key, "value", v)
	}
	return def
}

func envDur(key string, def time.Duration) time.Duration {
	if v, ok := os.LookupEnv(key); ok {
		if d, err := time.ParseDuration(v); err == nil {
			return d
		}
		slog.Warn("ignoring unparsable env override", "var", key, "value", v)
	}
	return def
}

func main() {
	listen := flag.String("listen", envStr("MIRAGE_LISTEN_ADDR", "127.0.0.1:7033"), "address to listen on for agents (env MIRAGE_LISTEN_ADDR)")
	agents := flag.Int("agents", envInt("MIRAGE_AGENTS", 1), "number of agents to wait for (env MIRAGE_AGENTS)")
	wait := flag.Duration("wait", envDur("MIRAGE_WAIT", 30*time.Second), "how long to wait for agents (env MIRAGE_WAIT)")
	policy := flag.String("policy", envStr("MIRAGE_POLICY", "balanced"), "deployment policy: balanced, frontloading, nostaging, random or adaptive (env MIRAGE_POLICY)")
	diameter := flag.Int("d", 3, "QT clustering diameter")
	parallel := flag.Int("parallel", deploy.DefaultParallelism, "worker-pool size for node testing within a wave")
	profilePar := flag.Int("profile-parallel", 0, "concurrent agent fingerprint RPCs while profiling the fleet (0 = default)")
	inline := flag.Bool("inline", false, "legacy distribution: ship the full upgrade payload inline in every test/integrate frame instead of content-addressed chunk manifests")
	jsonChunks := flag.Bool("json-chunks", false, "legacy chunk encoding: push missed chunks base64-encoded inside JSON frames instead of the binary chunk framing")
	noPeers := flag.Bool("no-peers", false, "disable peer swarming: every missed chunk is pushed by the vendor even when gated agents could serve it")
	showPlan := flag.Bool("plan", false, "print the staged wave schedule before deploying")
	urrFile := flag.String("urr", "", "save the report repository to this file after deployment")
	journal := flag.String("journal", "", "write-ahead deployment journal file for the one-shot rollout: every state transition is persisted, making the deployment durable and resumable")
	resume := flag.Bool("resume", false, "resume the rollout recorded in -journal (skip stages and members it records as done) instead of starting fresh")
	serve := flag.Bool("serve", envBool("MIRAGE_SERVE", false), "control-plane mode: expose the HTTP admin API on -admin and start rollouts on demand (mirage-ctl) instead of running one and exiting (env MIRAGE_SERVE)")
	admin := flag.String("admin", envStr("MIRAGE_ADMIN_ADDR", "127.0.0.1:7080"), "address for the HTTP control plane (one-shot mode serves it too, so a running rollout can be paused or aborted) (env MIRAGE_ADMIN_ADDR)")
	journalDir := flag.String("journal-dir", envStr("MIRAGE_JOURNAL_DIR", ""), "directory for per-rollout journals in -serve mode (empty = unjournaled rollouts unless the start request names a journal) (env MIRAGE_JOURNAL_DIR)")
	shards := flag.Int("shards", envInt("MIRAGE_SHARDS", 0), "agent-registry shard count, rounded up to a power of two (0 = derive from GOMAXPROCS); more shards mean less lock contention under registration storms and concurrent rollouts")
	workerBudget := flag.Int("worker-budget", envInt("MIRAGE_WORKER_BUDGET", 0), "vendor-wide cap on concurrently in-flight member RPCs shared by ALL rollouts (0 = unlimited); individual rollouts still honor -parallel within it (env MIRAGE_WORKER_BUDGET)")
	maxRollouts := flag.Int("max-rollouts", envInt("MIRAGE_MAX_ROLLOUTS", 0), "admission control: rollouts allowed to execute concurrently (0 = unbounded); POST /rollouts beyond this and -max-queued returns 429 (env MIRAGE_MAX_ROLLOUTS)")
	maxQueued := flag.Int("max-queued", envInt("MIRAGE_MAX_QUEUED", 0), "rollouts allowed to queue for an execution slot when -max-rollouts are active (0 = reject immediately) (env MIRAGE_MAX_QUEUED)")
	pprofFlag := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the admin API")
	autoRollback := flag.Bool("auto-rollback", false, "journaled automatic rollback: when the vendor abandons the upgrade, drive every integrated member back to the mysql 4.1.22 baseline through the chunk machinery in reverse")
	gateBaseline := flag.Float64("gate-baseline", 0, "canary gate: expected baseline failure rate (see -gate-min-samples)")
	gateExcess := flag.Float64("gate-excess", 0, "canary gate: tolerated excess failure rate over -gate-baseline")
	gateMinSamples := flag.Int("gate-min-samples", 0, "canary gate: minimum validation verdicts before the gate decides; 0 disables the gate (classic binary representative pass/fail)")
	faultSeed := flag.Uint64("fault-seed", 1, "chaos: seed for the deterministic per-agent fault streams")
	faultDrop := flag.Float64("fault-drop", 0, "chaos: probability a vendor→agent call is dropped before delivery (connection dies)")
	faultDelay := flag.Float64("fault-delay", 0, "chaos: probability a call is delayed by -fault-delay-by")
	faultDelayBy := flag.Duration("fault-delay-by", 2*time.Millisecond, "chaos: injected latency for delay faults")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "chaos: probability a pushed chunk payload is corrupted in flight (the content address catches it)")
	faultReset := flag.Float64("fault-reset", 0, "chaos: probability the connection resets after the agent did the work but before the reply is seen")
	faultMax := flag.Int("fault-max", 0, "chaos: total rate-fault budget, 0 = unlimited (crash schedules don't consume it)")
	logOpts := logx.Flags(flag.CommandLine)
	flag.Parse()
	if _, err := logOpts.Setup(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitUsage)
	}
	if *resume && *journal == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -journal")
		os.Exit(exitUsage)
	}
	pol := parsePolicy(*policy) // validate before waiting on agents

	srv, err := transport.ListenWith(*listen, transport.ListenOpts{Shards: *shards})
	if err != nil {
		fatal("listen failed", "err", err)
	}
	defer srv.Close()
	srv.InlinePayloads = *inline
	srv.JSONChunks = *jsonChunks
	srv.DisablePeers = *noPeers
	// One registry and tracer per vendor process: the transport books RPC
	// latency into it, the orchestrator threads it (and per-rollout
	// traces) through every rollout, and GET /metrics renders it.
	telem := telemetry.NewRegistry()
	tracer := &telemetry.Tracer{}
	srv.Telemetry = telem
	if *faultDrop > 0 || *faultDelay > 0 || *faultCorrupt > 0 || *faultReset > 0 {
		srv.Faults = transport.NewFaultInjector(transport.FaultPlan{
			Seed: *faultSeed, Drop: *faultDrop, Delay: *faultDelay,
			Corrupt: *faultCorrupt, Reset: *faultReset,
			DelayBy: *faultDelayBy, MaxFaults: *faultMax,
		})
		slog.Info("chaos: fault injection armed", "seed", *faultSeed, "drop", *faultDrop,
			"delay", *faultDelay, "corrupt", *faultCorrupt, "reset", *faultReset)
	}
	// Live-fleet drift: the monitor exists once the fleet is profiled; the
	// delta hook is installed before serving so an agent that pushes early
	// gets a clean "not yet" error instead of a race. The orchestrator
	// pointer is published the same way — the bridge from a classified
	// drift event to rollout gating.
	var fleetMu sync.Mutex
	var monitor *fleetwatch.Monitor
	var driftOrch *orchestrator.Orchestrator
	getMonitor := func() *fleetwatch.Monitor {
		fleetMu.Lock()
		defer fleetMu.Unlock()
		return monitor
	}
	srv.OnProfileDelta = func(req *transport.ProfileDeltaReq) (bool, error) {
		m := getMonitor()
		if m == nil {
			return false, errors.New("fleet not profiled yet")
		}
		if b, err := json.Marshal(req); err == nil {
			m.ObserveDeltaBytes(len(b), req.Full)
		}
		ev, err := m.ApplyDelta(req.Machine, req.AppSet,
			transport.ItemsFromWire(req.Added).Items(),
			transport.ItemsFromWire(req.Removed).Items(), req.Sig, req.Full)
		if err != nil {
			var rs *fleetwatch.ErrResync
			if errors.As(err, &rs) {
				return true, nil // ask the agent for its full profile
			}
			return false, err
		}
		if ev.Class != fleetwatch.ClassStable {
			slog.Info("fleet drift", "machine", ev.Machine, "class", string(ev.Class),
				"from", ev.From, "to", ev.To, "view", ev.Version)
			fleetMu.Lock()
			o := driftOrch
			fleetMu.Unlock()
			if o != nil {
				o.NotifyDrift(orchestrator.DriftEvent{
					Machine: ev.Machine, Cluster: ev.From, To: ev.To,
					Class: string(ev.Class), Version: ev.Version,
				})
			}
		}
		return false, nil
	}
	slog.Info("vendor listening", "addr", srv.Addr(), "agents_expected", *agents)
	if got := srv.WaitForAgents(*agents, *wait); got < *agents {
		fatal("agents missing at deadline", "registered", got, "expected", *agents)
	}
	names := srv.Agents()
	slog.Info("agents registered", "names", names)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Ask every agent to identify resources and record baselines.
	for _, name := range names {
		if _, err := srv.Identify(ctx, name, "mysql", [][]string{{"SELECT 1"}, {"SELECT 2"}}); err != nil {
			fatal("identify mysql failed", "agent", name, "err", err)
		}
		if _, err := srv.Record(ctx, name, "mysql", []string{"SELECT 1"}); err != nil {
			fatal("record mysql failed", "agent", name, "err", err)
		}
		// PHP identification fails harmlessly where PHP is absent; the
		// model just produces an empty-ish trace.
		if _, err := srv.Identify(ctx, name, "php", [][]string{nil}); err != nil {
			fatal("identify php failed", "agent", name, "err", err)
		}
		if _, err := srv.Record(ctx, name, "php", nil); err != nil {
			fatal("record php failed", "agent", name, "err", err)
		}
	}

	// Fingerprint against the vendor reference and cluster, on the shared
	// profile pipeline: collect agent profiles concurrently, cluster the
	// distinct profiles, assemble clusters of deployment over remote nodes.
	refCfg := transport.MirageRegistryConfig()
	reg, err := transport.BuildRegistry(refCfg)
	if err != nil {
		fatal("building parser registry failed", "err", err)
	}
	refs := scenario.MySQLResourceRefs()
	vendorItems := parser.NewFingerprinter(reg).Fingerprint(scenario.MySQLVendorReference(), refs)
	srv.ProfileParallelism = *profilePar
	rc, err := srv.ClusterRemote(ctx, "mysql", refs, refCfg, vendorItems, cluster.Config{Diameter: *diameter}, 1)
	if err != nil {
		fatal("fleet clustering failed", "err", err)
	}
	dcs := rc.Deploy
	fleetMu.Lock()
	monitor = fleetwatch.NewMonitor(cluster.NewSnapshot(
		cluster.Config{Diameter: *diameter}, profile.Fingerprints(rc.Profiles), rc.Clusters), telem)
	monitor.SetRepresentatives(dcs)
	fleetMu.Unlock()
	slog.Info("fleet profiled", "agents", len(rc.Profiles),
		"distinct_profiles", profile.Distinct(rc.Profiles), "clusters", len(rc.Clusters))
	for _, c := range rc.Clusters {
		slog.Info("cluster", "detail", c.String())
	}

	// The orchestrator owns every rollout this vendor runs, one-shot or
	// served; the admin API is mounted either way so mirage-ctl can
	// observe and control whatever is running.
	urr := report.New()
	orch := orchestrator.New(*journalDir)
	orch.Budget = deploy.NewBudget(*workerBudget)
	orch.MaxActive = *maxRollouts
	orch.MaxQueued = *maxQueued
	orch.Telemetry = telem
	orch.Tracer = tracer
	fleetMu.Lock()
	driftOrch = orch
	fleetMu.Unlock()
	vendorGate := staging.GatePolicy{}
	if *gateMinSamples > 0 {
		vendorGate = staging.GatePolicy{Enabled: true, BaselineFailureRate: *gateBaseline,
			MaxExcessRate: *gateExcess, MinSamples: *gateMinSamples}
	}
	launch := func(req orchestrator.StartRequest) (orchestrator.Spec, error) {
		p := pol
		if req.Policy != "" {
			parsed, ok := staging.ParsePolicy(req.Policy)
			if !ok {
				return orchestrator.Spec{}, fmt.Errorf("unknown policy %q", req.Policy)
			}
			p = parsed
		}
		gate := vendorGate
		if req.GateMinSamples > 0 {
			gate = req.GatePolicy()
		}
		return orchestrator.Spec{
			Policy:       p,
			Upgrade:      mysql5(),
			Clusters:     dcs,
			Fix:          fixer(urr),
			URR:          urr,
			Journal:      req.Journal,
			Resume:       req.Resume,
			Rebuild:      rebuildRelease,
			Configure:    configure(*parallel, srv, getMonitor),
			Gate:         gate,
			Baseline:     mysql4(),
			AutoRollback: *autoRollback || req.AutoRollback,
			Drift:        req.DriftPolicy(),
			Restage: func() ([]*deploy.Cluster, error) {
				m := getMonitor()
				if m == nil {
					return nil, errors.New("fleet monitor not initialised")
				}
				return m.DeployClusters(1, func(name string) deploy.Node { return srv.Node(name) })
			},
		}, nil
	}
	api := &orchestrator.API{
		Orch: orch, Launch: launch, Base: ctx,
		EnablePprof: *pprofFlag,
		Metrics:     []orchestrator.MetricsFunc{transportMetrics(srv)},
		FleetDrift: func() (any, error) {
			m := getMonitor()
			if m == nil {
				return nil, errors.New("fleet not profiled yet")
			}
			return m.View(), nil
		},
		// POST /fleet/refresh: full re-fingerprint of every registered
		// agent into a fresh fleet view version (drift flags reset — the
		// new view is ground truth, not a delta).
		FleetRefresh: func() (any, error) {
			m := getMonitor()
			if m == nil {
				return nil, errors.New("fleet not profiled yet")
			}
			fps, err := srv.FingerprintAll(ctx, "mysql", refs, refCfg, vendorItems)
			if err != nil {
				return nil, err
			}
			v := m.Refresh(fps)
			slog.Info("fleet refreshed", "view", v.Version, "machines", v.Machines, "clusters", len(v.Clusters))
			return v, nil
		},
	}
	httpSrv := &http.Server{Addr: *admin, Handler: api.Handler()}
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			slog.Error("control plane server failed", "err", err)
		}
	}()
	defer httpSrv.Close()
	slog.Info("control plane up", "url", "http://"+*admin)

	if *serve {
		// Control-plane mode: rollouts arrive over HTTP; run until
		// interrupted (SIGINT or SIGTERM), then drain gracefully: stop
		// taking admissions first — in-flight HTTP requests finish, new
		// ones are refused — then unwind the admission queue and abort
		// whatever is still executing.
		<-ctx.Done()
		slog.Info("drain: signal received; refusing new admissions",
			"active", orch.Active(), "queued", orch.Queued())
		shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
		httpSrv.Shutdown(shutCtx) //nolint:errcheck — drain is best-effort past the timeout
		cancelShut()
		for _, h := range orch.List() {
			if st := h.Status(); !st.State.Terminal() {
				slog.Info("interrupt: aborting rollout", "rollout", h.ID())
				h.Abort()
			}
		}
		code := 0
		for _, st := range orch.Statuses() {
			slog.Info("rollout drained", "rollout", st.ID, "state", string(st.State),
				"integrated", st.Integrated, "members", len(st.Members))
			if st.State != orchestrator.StateSucceeded {
				code = exitRollout
			}
		}
		if *urrFile != "" {
			saveURR(urr, *urrFile)
		}
		os.Exit(code)
	}

	// One-shot mode: start a single rollout on the orchestrator and wait.
	spec, err := launch(orchestrator.StartRequest{})
	if err != nil {
		fatal("building rollout spec failed", "err", err)
	}
	spec.Journal, spec.Resume = *journal, *resume
	if *showPlan {
		ctl := deploy.NewController(urr, nil)
		fmt.Print(ctl.PlanFor(pol, dcs).Describe())
	}
	h, err := orch.Start(ctx, spec)
	if err != nil {
		fatal("starting rollout failed", "err", err)
	}
	// The rollout ID is the operator's handle: mirage-ctl status/pause/
	// abort target it on the admin API while the rollout runs.
	fmt.Printf("rollout %s started (policy=%s, admin http://%s)\n", h.ID(), spec.Policy, *admin)
	out, err := h.Wait(context.Background())
	st := h.Status()
	if err != nil {
		// An aborted rollout is a verdict on the rollout (exit 3); every
		// other error here — journal I/O halting the plan, a resume
		// refusal, node infrastructure — is tooling trouble (exit 1).
		// The other exit-3 case, vendor abandonment (which covers "the
		// gate never converged": rounds exhaust and the upgrade is
		// abandoned), returns with err == nil and is handled below.
		slog.Error("rollout failed", "rollout", h.ID(), "err", err)
		if st.State == orchestrator.StateAborted {
			os.Exit(exitRollout)
		}
		os.Exit(exitInfra)
	}
	fmt.Printf("rollout %s: policy=%v integrated=%d/%d overhead=%d rounds=%d abandoned=%v quarantined=%d final=%s\n",
		h.ID(), out.Policy, out.Integrated(), len(out.Nodes), out.Overhead, out.Rounds, out.Abandoned, len(out.Quarantined), out.FinalID)
	for _, name := range out.Quarantined {
		slog.Warn("member quarantined (unreachable through retries)", "node", name)
	}
	mode := "chunked"
	if *inline {
		mode = "inline"
	}
	fmt.Printf("transfer mode=%s frames=%d bytes=%d chunk_bytes=%d chunk_hits=%d chunk_misses=%d\n",
		mode, out.Transfer.Frames, out.Transfer.Bytes, out.Transfer.ChunkBytes,
		out.Transfer.ChunkHits, out.Transfer.ChunkMisses)
	fmt.Printf("peer tier peer_bytes=%d peer_hits=%d vendor_fallbacks=%d\n",
		out.Transfer.PeerBytes, out.Transfer.PeerHits, out.Transfer.VendorFallbacks)
	for _, g := range urr.GroupFailures("mysql-5.0.22") {
		fmt.Printf("failure mode %q: %d report(s) from clusters %v\n",
			g.Signature, len(g.Reports), g.Clusters)
	}
	if *urrFile != "" {
		saveURR(urr, *urrFile)
	}
	if out.RolledBack {
		rb := out.Rollback
		fmt.Printf("rollout %s abandoned and rolled back to %s: reverted=%d skipped=%d rollback_chunks=%d faults_injected=%d\n",
			h.ID(), rb.BaselineID, len(rb.Reverted), len(rb.Skipped),
			out.Transfer.ChunksRolledBack, out.Transfer.FaultsInjected)
		for name, reason := range rb.Skipped {
			slog.Warn("rollback skipped member", "node", name, "reason", reason)
		}
		os.Exit(exitRollout)
	}
	if out.Abandoned {
		fmt.Printf("rollout %s abandoned: the upgrade could not be fixed\n", h.ID())
		os.Exit(exitRollout)
	}
}

// transportMetrics exposes the transport tier on GET /metrics: registry
// occupancy per shard plus the cumulative transfer and peer-tier
// counters. It lives here rather than in either package because the
// transport must not import the orchestrator (or vice versa) — the
// binary that owns both is the right place to bridge them.
func transportMetrics(srv *transport.Server) orchestrator.MetricsFunc {
	counter := func(name, help string, v int64) orchestrator.Metric {
		return orchestrator.Metric{Name: name, Help: help, Type: "counter", Value: float64(v)}
	}
	return func() []orchestrator.Metric {
		sizes := srv.ShardSizes()
		ms := make([]orchestrator.Metric, 0, len(sizes)+9)
		ms = append(ms, orchestrator.Metric{Name: "mirage_registry_agents_total",
			Help: "Registered agents.", Type: "gauge", Value: float64(srv.AgentCount())})
		for i, n := range sizes {
			ms = append(ms, orchestrator.Metric{Name: "mirage_registry_agents",
				Help: "Registered agents per registry shard.", Type: "gauge",
				Labels: [][2]string{{"shard", strconv.Itoa(i)}}, Value: float64(n)})
		}
		t := srv.TransferSnapshot()
		ms = append(ms,
			counter("mirage_transfer_frames_total", "Request frames sent to agents.", t.Frames),
			counter("mirage_transfer_bytes_total", "Total bytes on the wire.", t.Bytes),
			counter("mirage_transfer_chunk_bytes_total", "Content-addressed chunk payload bytes.", t.ChunkBytes),
			counter("mirage_transfer_chunk_hits_total", "Manifest chunks agents already held.", t.ChunkHits),
			counter("mirage_transfer_chunk_misses_total", "Manifest chunks that had to be transferred.", t.ChunkMisses),
			counter("mirage_peer_bytes_total", "Chunk bytes served agent-to-agent.", t.PeerBytes),
			counter("mirage_peer_hits_total", "Chunks served by the peer tier.", t.PeerHits),
			counter("mirage_peer_fallbacks_total", "Chunks the peer tier missed and the vendor pushed.", t.VendorFallbacks),
			counter("mirage_rollback_chunks_total", "Manifest chunks resolved while restoring members to the baseline.", t.ChunksRolledBack),
			counter("mirage_faults_injected_total", "Transport faults fired by the chaos injector.", t.FaultsInjected),
		)
		return ms
	}
}

// configure installs the vendor's controller tuning on each rollout.
func configure(parallel int, srv *transport.Server, getMonitor func() *fleetwatch.Monitor) func(*deploy.Controller) {
	return func(ctl *deploy.Controller) {
		ctl.Parallelism = parallel
		ctl.Transfer = srv.TransferSnapshot
		// Each gated wave's members become peer chunk servers for the
		// waves that follow, and the drift monitor treats their clusters
		// as rep-invalidated on any member change — one hook feeding both
		// the swarm tier and drift classification.
		ctl.GatedMembers = func(names []string) {
			srv.MarkPeerEligible(names)
			if m := getMonitor(); m != nil {
				m.MarkGated(names)
			}
		}
		// Chunks moved while restoring members book as ChunksRolledBack.
		ctl.RollbackMode = srv.SetRollbackMode
	}
}

func saveURR(urr *report.URR, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal("creating URR file failed", "err", err)
	}
	if err := urr.Save(f); err != nil {
		fatal("saving URR failed", "err", err)
	}
	if err := f.Close(); err != nil {
		fatal("closing URR file failed", "err", err)
	}
	slog.Info("saved report repository", "reports", urr.Len(), "path", path)
}

func parsePolicy(s string) deploy.Policy {
	policy, ok := staging.ParsePolicy(s)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", s)
		os.Exit(exitUsage)
	}
	return policy
}

// mysql4 is the baseline artifact a rollback restores: the version the
// fleet ran before the rollout. The agents' self-seeded caches still
// hold its chunks, so reverse manifests resolve almost entirely from
// cache.
func mysql4() *pkgmgr.Upgrade {
	return &pkgmgr.Upgrade{
		ID: "mysql-4.1.22",
		Pkg: &pkgmgr.Package{Name: "mysql", Version: "4.1.22", Files: []*machine.File{
			{Path: apps.MySQLExec, Type: machine.TypeExecutable, Data: []byte("mysqld 4.1.22"), Version: "4.1.22"},
			{Path: apps.LibMySQLPath, Type: machine.TypeSharedLib, Data: []byte("libmysqlclient 4.1"), Version: "4.1"},
		}},
	}
}

func mysql5() *pkgmgr.Upgrade {
	return &pkgmgr.Upgrade{
		ID: "mysql-5.0.22",
		Pkg: &pkgmgr.Package{Name: "mysql", Version: "5.0.22", Files: []*machine.File{
			{Path: apps.MySQLExec, Type: machine.TypeExecutable, Data: []byte("mysqld 5.0.22"), Version: "5.0.22"},
			{Path: apps.LibMySQLPath, Type: machine.TypeSharedLib, Data: []byte("libmysqlclient 5.0"), Version: "5.0"},
		}},
		Replaces: "4.1.22",
	}
}

// fixer is the vendor debugging loop: inspect the failure signatures in
// the URR and release a corrected upgrade addressing all of them.
func fixer(urr *report.URR) deploy.Fixer {
	return func(up *pkgmgr.Upgrade, failures []*report.Report) (*pkgmgr.Upgrade, bool) {
		fixed := fixedRelease(up.ID + "-fix")
		slog.Info("vendor debugging failures, releasing fix", "failures", len(failures), "release", fixed.ID)
		return fixed, true
	}
}

// fixedRelease builds the corrected upgrade under the given release ID.
func fixedRelease(id string) *pkgmgr.Upgrade {
	fixed := mysql5()
	fixed.ID = id
	fixed.Pkg.Files[1] = &machine.File{Path: apps.LibMySQLPath, Type: machine.TypeSharedLib,
		Data: []byte("libmysqlclient 5.0 php4-compat"), Version: "5.0"}
	fixed.Migrations = []pkgmgr.FileEdit{
		{Path: "/home/user/.my.cnf", Append: []byte("# migrated-for-5\n")},
	}
	return fixed
}

// rebuildRelease is the vendor's release store for journal resume: it
// maps any upgrade ID this vendor can have shipped — the original or a
// "-fix" re-release — back to its artifact, so a resumed rollout
// continues from the version the journal ended on.
func rebuildRelease(id string) (*pkgmgr.Upgrade, bool) {
	if id == mysql5().ID {
		return mysql5(), true
	}
	if id == mysql4().ID {
		return mysql4(), true // the rollback baseline
	}
	if strings.HasSuffix(id, "-fix") && strings.HasPrefix(id, mysql5().ID) {
		return fixedRelease(id), true
	}
	return nil, false
}
