// mirage-vendor runs the vendor side of a networked Mirage deployment: it
// listens for machine agents, drives local resource identification and
// baseline tracing on each, fingerprints and clusters the fleet, and then
// stages the MySQL 4->5 upgrade across the clusters, debugging reported
// failures by releasing a corrected upgrade.
//
// Pair with mirage-agent:
//
//	mirage-vendor -listen 127.0.0.1:7033 -agents 4 &
//	mirage-agent -connect 127.0.0.1:7033 -machine ubt-ms4 &
//	mirage-agent -connect 127.0.0.1:7033 -machine ubt-ms4-php4 &
//	...
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/machine"
	"repro/internal/parser"
	"repro/internal/pkgmgr"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/rollout"
	"repro/internal/scenario"
	"repro/internal/staging"
	"repro/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7033", "address to listen on")
	agents := flag.Int("agents", 1, "number of agents to wait for")
	wait := flag.Duration("wait", 30*time.Second, "how long to wait for agents")
	policy := flag.String("policy", "balanced", "deployment policy: balanced, frontloading, nostaging, random or adaptive")
	diameter := flag.Int("d", 3, "QT clustering diameter")
	parallel := flag.Int("parallel", deploy.DefaultParallelism, "worker-pool size for node testing within a wave")
	profilePar := flag.Int("profile-parallel", 0, "concurrent agent fingerprint RPCs while profiling the fleet (0 = default)")
	inline := flag.Bool("inline", false, "legacy distribution: ship the full upgrade payload inline in every test/integrate frame instead of content-addressed chunk manifests")
	showPlan := flag.Bool("plan", false, "print the staged wave schedule before deploying")
	urrFile := flag.String("urr", "", "save the report repository to this file after deployment")
	journal := flag.String("journal", "", "write-ahead deployment journal file: every rollout state transition is persisted, making the deployment durable and resumable")
	resume := flag.Bool("resume", false, "resume the rollout recorded in -journal (skip stages and members it records as done) instead of starting fresh")
	flag.Parse()
	if *resume && *journal == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -journal")
		os.Exit(2)
	}
	pol := parsePolicy(*policy) // validate before waiting on agents

	srv, err := transport.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.InlinePayloads = *inline
	log.Printf("vendor listening on %s, waiting for %d agent(s)", srv.Addr(), *agents)
	if got := srv.WaitForAgents(*agents, *wait); got < *agents {
		log.Fatalf("only %d/%d agents registered", got, *agents)
	}
	names := srv.Agents()
	log.Printf("agents: %v", names)

	// Ask every agent to identify resources and record baselines.
	for _, name := range names {
		if _, err := srv.Identify(name, "mysql", [][]string{{"SELECT 1"}, {"SELECT 2"}}); err != nil {
			log.Fatalf("identify mysql on %s: %v", name, err)
		}
		if _, err := srv.Record(name, "mysql", []string{"SELECT 1"}); err != nil {
			log.Fatalf("record mysql on %s: %v", name, err)
		}
		// PHP identification fails harmlessly where PHP is absent; the
		// model just produces an empty-ish trace.
		if _, err := srv.Identify(name, "php", [][]string{nil}); err != nil {
			log.Fatalf("identify php on %s: %v", name, err)
		}
		if _, err := srv.Record(name, "php", nil); err != nil {
			log.Fatalf("record php on %s: %v", name, err)
		}
	}

	// Fingerprint against the vendor reference and cluster, on the shared
	// profile pipeline: collect agent profiles concurrently, cluster the
	// distinct profiles, assemble clusters of deployment over remote nodes.
	refCfg := transport.MirageRegistryConfig()
	reg, err := transport.BuildRegistry(refCfg)
	if err != nil {
		log.Fatal(err)
	}
	refs := scenario.MySQLResourceRefs()
	vendorItems := parser.NewFingerprinter(reg).Fingerprint(scenario.MySQLVendorReference(), refs)
	srv.ProfileParallelism = *profilePar
	rc, err := srv.ClusterRemote("mysql", refs, refCfg, vendorItems, cluster.Config{Diameter: *diameter}, 1)
	if err != nil {
		log.Fatal(err)
	}
	dcs := rc.Deploy
	log.Printf("profiled %d agents (%d distinct profiles) into %d clusters",
		len(rc.Profiles), profile.Distinct(rc.Profiles), len(rc.Clusters))
	for _, c := range rc.Clusters {
		log.Printf("  %s", c)
	}

	// Stage the upgrade.
	urr := report.New()
	ctl := deploy.NewController(urr, fixer(urr))
	ctl.Parallelism = *parallel
	ctl.Transfer = srv.TransferSnapshot
	if *showPlan {
		fmt.Print(ctl.PlanFor(pol, dcs).Describe())
	}
	var out *deploy.Outcome
	if *journal != "" {
		eng := &rollout.Engine{
			Controller: ctl,
			Path:       *journal,
			Resume:     *resume,
			Rebuild:    rebuildRelease,
		}
		out, err = eng.Deploy(pol, mysql5(), dcs)
	} else {
		out, err = ctl.Deploy(pol, mysql5(), dcs)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy=%v integrated=%d/%d overhead=%d rounds=%d abandoned=%v quarantined=%d final=%s\n",
		out.Policy, out.Integrated(), len(out.Nodes), out.Overhead, out.Rounds, out.Abandoned, len(out.Quarantined), out.FinalID)
	for _, name := range out.Quarantined {
		log.Printf("quarantined (unreachable through retries): %s", name)
	}
	mode := "chunked"
	if *inline {
		mode = "inline"
	}
	fmt.Printf("transfer mode=%s frames=%d bytes=%d chunk_bytes=%d chunk_hits=%d chunk_misses=%d\n",
		mode, out.Transfer.Frames, out.Transfer.Bytes, out.Transfer.ChunkBytes,
		out.Transfer.ChunkHits, out.Transfer.ChunkMisses)
	for _, g := range urr.GroupFailures("mysql-5.0.22") {
		fmt.Printf("failure mode %q: %d report(s) from clusters %v\n",
			g.Signature, len(g.Reports), g.Clusters)
	}
	if *urrFile != "" {
		f, err := os.Create(*urrFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := urr.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("saved %d report(s) to %s", urr.Len(), *urrFile)
	}
}

func parsePolicy(s string) deploy.Policy {
	policy, ok := staging.ParsePolicy(s)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", s)
		os.Exit(2)
	}
	return policy
}

func mysql5() *pkgmgr.Upgrade {
	return &pkgmgr.Upgrade{
		ID: "mysql-5.0.22",
		Pkg: &pkgmgr.Package{Name: "mysql", Version: "5.0.22", Files: []*machine.File{
			{Path: apps.MySQLExec, Type: machine.TypeExecutable, Data: []byte("mysqld 5.0.22"), Version: "5.0.22"},
			{Path: apps.LibMySQLPath, Type: machine.TypeSharedLib, Data: []byte("libmysqlclient 5.0"), Version: "5.0"},
		}},
		Replaces: "4.1.22",
	}
}

// fixer is the vendor debugging loop: inspect the failure signatures in
// the URR and release a corrected upgrade addressing all of them.
func fixer(urr *report.URR) deploy.Fixer {
	return func(up *pkgmgr.Upgrade, failures []*report.Report) (*pkgmgr.Upgrade, bool) {
		fixed := fixedRelease(up.ID + "-fix")
		log.Printf("vendor: debugging %d failure report(s), releasing %s", len(failures), fixed.ID)
		return fixed, true
	}
}

// fixedRelease builds the corrected upgrade under the given release ID.
func fixedRelease(id string) *pkgmgr.Upgrade {
	fixed := mysql5()
	fixed.ID = id
	fixed.Pkg.Files[1] = &machine.File{Path: apps.LibMySQLPath, Type: machine.TypeSharedLib,
		Data: []byte("libmysqlclient 5.0 php4-compat"), Version: "5.0"}
	fixed.Migrations = []pkgmgr.FileEdit{
		{Path: "/home/user/.my.cnf", Append: []byte("# migrated-for-5\n")},
	}
	return fixed
}

// rebuildRelease is the vendor's release store for journal resume: it
// maps any upgrade ID this vendor can have shipped — the original or a
// "-fix" re-release — back to its artifact, so a resumed rollout
// continues from the version the journal ended on.
func rebuildRelease(id string) (*pkgmgr.Upgrade, bool) {
	if id == mysql5().ID {
		return mysql5(), true
	}
	if strings.HasSuffix(id, "-fix") && strings.HasPrefix(id, mysql5().ID) {
		return fixedRelease(id), true
	}
	return nil, false
}
